//! Compares the cost of the two ITUA encodings: the faithful SAN build
//! (Figure 2 composed model executed by the SAN simulator) versus the
//! direct discrete-event implementation, plus the cost of flattening the
//! composed model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use itua_core::des::ItuaDes;
use itua_core::params::Params;
use itua_core::san_model;
use itua_san::simulator::SanSimulator;

fn params() -> Params {
    Params::default().with_domains(4, 2).with_applications(2, 3)
}

fn bench_des_run(c: &mut Criterion) {
    let des = ItuaDes::new(params()).unwrap();
    let mut seed = 0u64;
    c.bench_function("itua_des_run_5h", |b| {
        b.iter(|| {
            seed += 1;
            black_box(des.run(seed, 5.0, &[5.0]))
        });
    });
}

fn bench_san_run(c: &mut Criterion) {
    let model = san_model::build(&params()).unwrap();
    let sim = SanSimulator::new(model.san.clone());
    let mut seed = 0u64;
    c.bench_function("itua_san_run_5h", |b| {
        b.iter(|| {
            seed += 1;
            black_box(sim.run(seed, 5.0, &mut []).unwrap())
        });
    });
}

fn bench_san_build(c: &mut Criterion) {
    let p = params();
    c.bench_function("itua_san_flatten", |b| {
        b.iter(|| black_box(san_model::build(&p).unwrap()));
    });
    let big = Params::default()
        .with_domains(10, 3)
        .with_applications(8, 7);
    c.bench_function("itua_san_flatten_baseline_8apps", |b| {
        b.iter(|| black_box(san_model::build(&big).unwrap()));
    });
}

criterion_group! {
    name = encodings;
    config = Criterion::default().sample_size(30);
    targets = bench_des_run, bench_san_run, bench_san_build
}
criterion_main!(encodings);

//! Symmetry-lumping benchmark: exact analytic solution of a
//! configuration whose unreduced tangible state space is far beyond the
//! unlumped backend's reach, with a tracked baseline.
//!
//! The headline point (see [`headline_params`]) is five interchangeable
//! single-host domains with one two-replica application and corruption
//! spread disabled: 60 462 747 tangible states in the unreduced chain,
//! but only 370 304 orbits once the wreath-product symmetry (domain
//! permutations composed with per-domain host permutations, and
//! replica-slot permutations within each application) is lumped — a
//! ~163x reduction that turns an infeasible solve into an exact one.
//! The unreduced count is not re-generated here; it is recovered exactly
//! from the quotient's orbit sizes (`full_state_total`), which the
//! lumped generator accumulates as it interns canonical
//! representatives.
//!
//! Three figures of merit land in the tracked `BENCH_analytic.json`:
//!
//! * `reduction_factor` — full tangible states per lumped orbit on the
//!   headline point; structural, deterministic, and gated at ≥ 20 by
//!   `cargo xtask bench-json --check`.
//! * `build_ms` / `solve_ms` — wall-clock for lumped state-space +
//!   CTMC construction and for the uniformization solve; compared
//!   against the committed baseline with the same regression factor as
//!   the hot-path benchmark.
//! * `micro_max_rel_err` — the worst relative disagreement between the
//!   lumped and unlumped solutions across every measure on a micro
//!   configuration both can solve; gated at ≤ 1e-9 (the lumping is an
//!   exact quotient, so only uniformization truncation noise remains).
//!
//! `--json PATH` writes the tracked artifact (the `baseline` block is
//! preserved once created, `current` is overwritten); `--quick` swaps
//! the headline for a three-domain point (8 054 orbits / 184 491
//! states) for CI smoke coverage.
//!
//! Usage: `cargo bench -p itua-bench --bench analytic -- [--quick]
//! [--json PATH]` (or `cargo xtask bench-json --only analytic`).

use itua_core::analytic::{AnalyticOptions, ItuaAnalytic};
use itua_core::params::Params;
use itua_runner::json::Json;
use std::time::Instant;

/// Mission time (hours) for the exact solve.
const HORIZON: f64 = 5.0;
/// State budget for the lumped builds (the headline point needs ~371k).
const MAX_STATES: usize = 1_000_000;

/// A configuration with corruption spread disabled, so the chain stays
/// finite-rate and the symmetry group is the full wreath product.
fn no_spread(domains: usize, hosts: usize, apps: usize, reps: usize) -> Params {
    let mut p = Params::default()
        .with_domains(domains, hosts)
        .with_applications(apps, reps);
    p.spread_rate_domain = 0.0;
    p.spread_rate_system = 0.0;
    p
}

/// The headline point: 60 462 747 tangible states, 370 304 orbits.
/// Unlumped, this is ~600x over the default analytic budget and would
/// not fit in memory as an explicit CSR chain; lumped it solves exactly.
fn headline_params() -> Params {
    no_spread(5, 1, 1, 2)
}

/// The `--quick` point: 184 491 tangible states, 8 054 orbits — still
/// beyond the unlumped default budget of 100 000, but seconds to solve.
fn quick_params() -> Params {
    no_spread(3, 1, 1, 3)
}

/// A micro point both the lumped and unlumped backends solve fast, for
/// the exactness cross-check.
fn micro_params() -> Params {
    no_spread(2, 1, 1, 2)
}

fn build(params: &Params, lump: bool) -> ItuaAnalytic {
    ItuaAnalytic::with_options(
        params,
        &AnalyticOptions {
            max_states: MAX_STATES,
            lump,
            threads: 1,
        },
    )
    .expect("configuration fits the lumped budget")
}

/// Worst relative disagreement between lumped and unlumped solutions
/// across every measure on the micro point.
fn micro_max_rel_err() -> f64 {
    let full = build(&micro_params(), false);
    let lumped = build(&micro_params(), true);
    let a = full
        .solve(HORIZON, &[HORIZON], 0.95)
        .expect("unlumped micro solve");
    let b = lumped
        .solve(HORIZON, &[HORIZON], 0.95)
        .expect("lumped micro solve");
    let (ea, eb) = (a.estimates(), b.estimates());
    assert_eq!(ea.len(), eb.len(), "measure sets must match");
    ea.iter()
        .zip(&eb)
        .map(|(x, y)| {
            assert_eq!(x.name, y.name);
            (x.ci.mean - y.ci.mean).abs() / x.ci.mean.abs().max(1e-12)
        })
        .fold(0.0, f64::max)
}

/// Resolves a `--json` path: relative paths are anchored at the
/// workspace root (cargo runs bench binaries with cwd = crates/bench).
fn resolve_json_path(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return p.to_owned();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up")
        .join(p)
}

/// Rewrites `path`: `current` gets this run's values; `baseline` is kept
/// from the existing file (or seeded with this run's values when the
/// file does not exist or has no baseline).
fn write_tracked_json(path: &std::path::Path, results: &[(String, f64)]) -> std::io::Result<()> {
    let current = Json::Obj(
        results
            .iter()
            .map(|(name, x)| (name.clone(), Json::Num(*x)))
            .collect(),
    );
    let baseline = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("baseline").cloned())
        .unwrap_or_else(|| current.clone());
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("itua-analytic-lumped-v1".into())),
        (
            "unit".into(),
            Json::Str("states, reduction factor, milliseconds, relative error".into()),
        ),
        ("baseline".into(), baseline),
        ("current".into(), current),
    ]);
    std::fs::write(path, format!("{doc}\n"))
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "--test" => quick = true,
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--bench" => {} // passed by `cargo bench`
            other => panic!("unknown argument '{other}' (try --quick, --json PATH)"),
        }
    }
    let params = if quick {
        quick_params()
    } else {
        headline_params()
    };

    let t0 = Instant::now();
    let analytic = build(&params, true);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let lumped_states = analytic.num_states();
    let full_states = analytic
        .full_state_total()
        .expect("lumped backend records the unreduced total");
    let reduction = full_states as f64 / lumped_states as f64;

    let t1 = Instant::now();
    let solution = analytic
        .solve(HORIZON, &[HORIZON], 0.95)
        .expect("lumped headline solve");
    let solve_ms = t1.elapsed().as_secs_f64() * 1e3;
    let unavailability = solution
        .mean("unavailability")
        .expect("unavailability measure");
    let unreliability = solution
        .mean("unreliability")
        .expect("unreliability measure");

    let micro_err = micro_max_rel_err();

    println!(
        "lumped analytic point: {lumped_states} orbits / {full_states} tangible states \
         ({reduction:.1}x), horizon {HORIZON} h"
    );
    println!("  build                  {build_ms:.0} ms");
    println!("  solve                  {solve_ms:.0} ms");
    println!("  unavailability         {unavailability:.6e}");
    println!("  unreliability          {unreliability:.6e}");
    println!("  micro_max_rel_err      {micro_err:.3e}");

    assert!(
        micro_err <= 1e-9,
        "lumped vs unlumped micro disagreement {micro_err:.3e} exceeds 1e-9"
    );

    let results: Vec<(String, f64)> = vec![
        ("lumped_states".into(), lumped_states as f64),
        ("full_states".into(), full_states as f64),
        ("reduction_factor".into(), reduction),
        ("build_ms".into(), build_ms),
        ("solve_ms".into(), solve_ms),
        ("unavailability".into(), unavailability),
        ("unreliability".into(), unreliability),
        ("micro_max_rel_err".into(), micro_err),
    ];

    if let Some(path) = json_path {
        let path = resolve_json_path(&path);
        write_tracked_json(&path, &results).expect("writing tracked bench JSON");
        println!("wrote {}", path.display());
    }
}

//! Microbenchmarks of the substrates every experiment is built on: the
//! PRNG, the pending-event set, variate generation, the statistics, and
//! the numerical CTMC solvers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use itua_markov::ctmc::Ctmc;
use itua_sim::dist::{Distribution, Exponential};
use itua_sim::queue::EventQueue;
use itua_sim::rng::Rng;
use itua_stats::online::OnlineStats;
use itua_stats::tdist::t_quantile;

fn bench_rng(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(1);
    c.bench_function("rng_next_u64_x1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });
    let mut rng2 = Rng::seed_from_u64(2);
    c.bench_function("rng_weighted_choice_x1000", |b| {
        let w = [0.8, 0.15, 0.05];
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1000 {
                acc += rng2.weighted_choice(&w);
            }
            black_box(acc)
        });
    });
}

fn bench_exponential(c: &mut Criterion) {
    let d = Exponential::new(3.0).unwrap();
    let mut rng = Rng::seed_from_u64(3);
    c.bench_function("exponential_sample_x1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += d.sample(&mut rng);
            }
            black_box(acc)
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1000", |b| {
        let mut rng = Rng::seed_from_u64(4);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000 {
                q.schedule(rng.next_f64() * 100.0, i);
            }
            let mut acc = 0.0;
            while let Some((t, _)) = q.pop() {
                acc += t;
            }
            black_box(acc)
        });
    });
    c.bench_function("event_queue_cancel_heavy", |b| {
        let mut rng = Rng::seed_from_u64(5);
        b.iter(|| {
            let mut q = EventQueue::new();
            let keys: Vec<_> = (0..1000)
                .map(|i| q.schedule(rng.next_f64() * 100.0, i))
                .collect();
            for k in keys.iter().step_by(2) {
                q.cancel(*k);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("online_stats_push_x1000", |b| {
        b.iter(|| {
            let mut s = OnlineStats::new();
            for i in 0..1000 {
                s.push(i as f64 * 0.37);
            }
            black_box(s.mean())
        });
    });
    c.bench_function("t_quantile_df30", |b| {
        b.iter(|| black_box(t_quantile(0.975, 30.0)));
    });
}

fn bench_ctmc(c: &mut Criterion) {
    // Birth-death chain with 200 states.
    let n = 200;
    let mut rates = Vec::new();
    for i in 0..n - 1 {
        rates.push((i, i + 1, 1.0));
        rates.push((i + 1, i, 2.0));
    }
    let ctmc = Ctmc::from_rates(n, &rates).unwrap();
    let mut initial = vec![0.0; n];
    initial[0] = 1.0;
    c.bench_function("ctmc_transient_200_states_t10", |b| {
        b.iter(|| black_box(ctmc.transient(&initial, 10.0, 1e-9).unwrap()));
    });
    c.bench_function("ctmc_steady_state_200_states", |b| {
        b.iter(|| black_box(ctmc.steady_state(1e-10, 1_000_000).unwrap()));
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_rng, bench_exponential, bench_event_queue, bench_stats, bench_ctmc
}
criterion_main!(substrates);

//! Rare-event benchmark: RESTART importance splitting vs plain Monte
//! Carlo on a figure-4 unreliability tail point, with a tracked baseline.
//!
//! The scenario is a deliberately engineered tail configuration (see
//! [`tail_params`]): two single-host domains, one application with a
//! replica in each domain, no corruption spread, and remote attacks only
//! against host operating systems. Replica corruption — the only route to
//! a Byzantine failure and hence to unreliability mass — is then gated by
//! a prior host corruption, which is exactly the upward crossing of the
//! `CorruptDomainCount` importance level the splitting engine forks on.
//!
//! Both arms run the same number of independent trees through the same
//! weighted estimator path (`run_measures_split`); the plain arm uses an
//! empty [`SplitSpec`], which is bit-identical to the unweighted
//! replication loop. The figure of merit is
//!
//! ```text
//! event_reduction = (steps_plain * hw_plain²) / (steps_split * hw_split²)
//! ```
//!
//! i.e. the factor fewer simulated events splitting needs for the same
//! confidence-interval half-width on `unreliability` (work × variance is
//! asymptotically constant for a fixed method, so the ratio is the
//! work-normalized variance-reduction factor). Everything is seeded, so
//! the reported numbers are deterministic, not timings; the `--check`
//! gate in `cargo xtask bench-json` requires `event_reduction >= 10`.
//!
//! `--json PATH` writes the tracked `BENCH_rare.json` (the `baseline`
//! block is preserved once created, `current` is overwritten); `--quick`
//! shrinks the tree counts for CI smoke coverage.
//!
//! Usage: `cargo bench -p itua-bench --bench rare_split -- [--quick]
//! [--json PATH]` (or `cargo xtask bench-json`).

use itua_core::measures::names;
use itua_core::params::Params;
use itua_rare::SplitSpec;
use itua_runner::backend::{Backend, BackendKind, ItuaBackend, ModelCheck};
use itua_runner::json::Json;
use itua_runner::progress::NullProgress;
use itua_runner::split::run_measures_split;
use itua_runner::RunnerConfig;

/// Origin seed for both arms' tree streams.
const BENCH_SEED: u64 = 0x4A4E;
/// Figure-4 style mission time (hours).
const HORIZON: f64 = 5.0;
/// Trees per arm. The tail probability is ~1e-3, so the plain arm needs
/// tens of thousands of trees for its CI half-width to be a meaningful
/// yardstick.
const TREES: u32 = 65_536;
/// Splitting schedule: fork at the first and second corrupt domain.
const SPEC: &str = "1x10,2x10";

/// The figure-4 tail point: a micro configuration small enough for the
/// analytic CTMC backend (so `tests/split_oracle.rs` checks this exact
/// setup against the exact solution) pushed into the unreliability tail.
///
/// * One replica per single-host domain, four domains: Byzantine failure
///   of the 4-replica group needs **two** corrupt replicas, and each
///   replica corruption needs a prior corruption of its own host (remote
///   attack weights for replicas and managers are zero). The rare path
///   therefore climbs the `CorruptDomainCount` level twice — precisely
///   the staircase RESTART multiplies effort on.
/// * All IDS channels that would *exclude* domains are disabled
///   (`false_alarm_rate = 0`, per-category attack detection
///   probabilities 0): an exclusion raises the importance level without
///   any chance of contributing unreliability mass, which would dilute
///   the splitting effort with dead branches. What remains is the pure
///   attack/escalation race the level function was designed for.
/// * A reduced attack rate makes each host corruption uncommon, the
///   local escalation (`corrupt_host_replica_rate`) is slow, and a
///   lowered `misbehave_rate` still lets the group convict a lone
///   corrupt replica before the second one usually lands — so most first
///   crossings fail to produce a Byzantine pair. That small conditional
///   probability past the first threshold is the regime where splitting
///   pays off.
///
/// Exact unreliability (analytic backend, 12 673 tangible states) is
/// ~2.0e-4 at the 5 h horizon.
fn tail_params() -> Params {
    let mut p = Params::default().with_domains(4, 1).with_applications(1, 4);
    p.spread_rate_domain = 0.0;
    p.spread_rate_system = 0.0;
    p.attack_weight_replica = 0.0;
    p.attack_weight_manager = 0.0;
    p.base_attack_rate = 0.4;
    p.host_corruption_multiplier = 12.0;
    p.misbehave_rate = 0.2;
    p.false_alarm_rate = 0.0;
    p.attack_mix.detect_script = 0.0;
    p.attack_mix.detect_exploratory = 0.0;
    p.attack_mix.detect_innovative = 0.0;
    p.detect_replica = 0.0;
    p.detect_manager = 0.0;
    p
}

/// One arm's outcome on the `unreliability` measure.
struct Arm {
    mean: f64,
    half_width: f64,
    steps: u64,
}

fn run_arm(backend: &ItuaBackend, spec: &SplitSpec, trees: u32) -> Arm {
    let run = run_measures_split(
        backend,
        trees,
        0.95,
        BENCH_SEED,
        HORIZON,
        &[HORIZON],
        spec,
        &RunnerConfig::default(),
        &NullProgress,
        ModelCheck::Off,
    )
    .expect("tail-point simulation");
    let est = run
        .measures
        .estimates()
        .into_iter()
        .find(|e| e.name == names::UNRELIABILITY)
        .expect("unreliability estimate");
    Arm {
        mean: est.ci.mean,
        half_width: est.ci.half_width,
        steps: run.totals.steps,
    }
}

/// The exact unreliability of the tail point from the analytic CTMC
/// backend — recorded alongside the simulation arms so the committed
/// artifact is self-validating (both CIs should cover it).
fn exact_unreliability() -> f64 {
    let backend = ItuaBackend::for_params(BackendKind::Analytic, &tail_params())
        .expect("analytic tail backend");
    let exact = backend
        .exact_measures(HORIZON, &[HORIZON], 0.95)
        .expect("analytic backend is exact")
        .expect("analytic tail solution");
    exact
        .estimates()
        .into_iter()
        .find(|e| e.name == names::UNRELIABILITY)
        .expect("exact unreliability")
        .ci
        .mean
}

/// Resolves a `--json` path: relative paths are anchored at the
/// workspace root (cargo runs bench binaries with cwd = crates/bench).
fn resolve_json_path(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return p.to_owned();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up")
        .join(p)
}

/// Rewrites `path`: `current` gets this run's values; `baseline` is kept
/// from the existing file (or seeded with this run's values when the
/// file does not exist or has no baseline).
fn write_tracked_json(path: &std::path::Path, results: &[(String, f64)]) -> std::io::Result<()> {
    let current = Json::Obj(
        results
            .iter()
            .map(|(name, x)| (name.clone(), Json::Num(*x)))
            .collect(),
    );
    let baseline = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("baseline").cloned())
        .unwrap_or_else(|| current.clone());
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("itua-rare-split-v1".into())),
        (
            "unit".into(),
            Json::Str("deterministic seeded run; events and CI half-widths".into()),
        ),
        ("baseline".into(), baseline),
        ("current".into(), current),
    ]);
    std::fs::write(path, format!("{doc}\n"))
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "--test" => quick = true,
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--bench" => {} // passed by `cargo bench`
            other => panic!("unknown argument '{other}' (try --quick, --json PATH)"),
        }
    }
    let trees = if quick { 2048 } else { TREES };

    let backend =
        ItuaBackend::for_params(BackendKind::Des, &tail_params()).expect("DES tail backend");
    let spec: SplitSpec = SPEC.parse().expect("valid splitting spec");

    let plain = run_arm(&backend, &SplitSpec::none(), trees);
    let split = run_arm(&backend, &spec, trees);
    let exact = exact_unreliability();

    // Work × variance is the method-invariant cost of a target CI width;
    // the ratio is how many times fewer events splitting needs.
    let event_reduction = (plain.steps as f64 * plain.half_width.powi(2))
        / (split.steps as f64 * split.half_width.powi(2));

    println!("figure-4 tail point: {trees} trees, horizon {HORIZON} h, spec {SPEC}");
    println!("  exact unreliability    {exact:.6e}");
    println!(
        "  plain    mean {:.6e}  hw {:.3e}  events {}",
        plain.mean, plain.half_width, plain.steps
    );
    println!(
        "  split    mean {:.6e}  hw {:.3e}  events {}",
        split.mean, split.half_width, split.steps
    );
    println!("  event_reduction        {event_reduction:.2}x");

    // At full size both arms must cover the exact value; the quick smoke
    // run is far too small for the plain arm to even see a failure
    // (expected hits ≈ trees × 2e-4), so it only exercises the pipeline.
    if !quick {
        for (name, arm) in [("plain", &plain), ("split", &split)] {
            assert!(
                (arm.mean - exact).abs() <= arm.half_width,
                "{name} 95% CI [{:.3e} ± {:.3e}] misses the exact value {exact:.3e}",
                arm.mean,
                arm.half_width,
            );
        }
    }

    let results: Vec<(String, f64)> = vec![
        ("trees".into(), f64::from(trees)),
        ("exact_unreliability".into(), exact),
        ("plain_mean".into(), plain.mean),
        ("plain_half_width".into(), plain.half_width),
        ("plain_events".into(), plain.steps as f64),
        ("split_mean".into(), split.mean),
        ("split_half_width".into(), split.half_width),
        ("split_events".into(), split.steps as f64),
        ("event_reduction".into(), event_reduction),
    ];

    if let Some(path) = json_path {
        let path = resolve_json_path(&path);
        write_tracked_json(&path, &results).expect("writing tracked bench JSON");
        println!("wrote {}", path.display());
    }
}

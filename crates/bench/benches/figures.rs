//! Benchmarks the cost of regenerating each of the paper's figures.
//!
//! One benchmark per figure panel group (Figures 3, 4, 5), measuring a
//! fixed number of replications per sweep point so the reported times
//! extrapolate linearly to publication-size runs (the `figure3/4/5`
//! binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use itua_studies::sweep::SweepConfig;
use itua_studies::{figure3, figure4, figure5};

fn small_cfg() -> SweepConfig {
    SweepConfig {
        replications: 25,
        ..SweepConfig::default()
    }
}

fn bench_figure3(c: &mut Criterion) {
    c.bench_function("figure3_25_reps_per_point", |b| {
        b.iter(|| figure3::run(&small_cfg()));
    });
}

fn bench_figure4(c: &mut Criterion) {
    c.bench_function("figure4_25_reps_per_point", |b| {
        b.iter(|| figure4::run(&small_cfg()));
    });
}

fn bench_figure5(c: &mut Criterion) {
    c.bench_function("figure5_25_reps_per_point", |b| {
        b.iter(|| figure5::run(&small_cfg()));
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_figure3, bench_figure4, bench_figure5
}
criterion_main!(figures);

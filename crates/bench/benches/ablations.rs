//! Ablation benchmarks over the design choices DESIGN.md calls out: the
//! exclusion policy, the attack-spread level, the IDS latency, and the
//! system scale. Each benchmark runs a fixed batch of replications, so
//! throughput differences reflect how much *work* (events) each design
//! point generates — heavier attack regimes produce more events.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use itua_core::des::ItuaDes;
use itua_core::params::{ManagementScheme, Params};

fn run_batch(des: &ItuaDes, reps: u64) -> f64 {
    let mut acc = 0.0;
    for seed in 0..reps {
        acc += des.run(seed, 10.0, &[]).unavailability(10.0);
    }
    acc
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("exclusion_scheme");
    for (name, scheme) in [
        ("domain", ManagementScheme::DomainExclusion),
        ("host", ManagementScheme::HostExclusion),
    ] {
        let des = ItuaDes::new(
            Params::default()
                .with_domains(10, 3)
                .with_applications(4, 7)
                .with_scheme(scheme),
        )
        .unwrap();
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(run_batch(&des, 20)));
        });
    }
    g.finish();
}

fn bench_spread(c: &mut Criterion) {
    let mut g = c.benchmark_group("spread_rate");
    for spread in [0.0, 5.0, 10.0] {
        let des = ItuaDes::new(
            Params::default()
                .with_domains(10, 3)
                .with_applications(4, 7)
                .with_host_corruption_multiplier(5.0)
                .with_spread_rate(spread),
        )
        .unwrap();
        g.bench_function(BenchmarkId::from_parameter(spread), |b| {
            b.iter(|| black_box(run_batch(&des, 20)));
        });
    }
    g.finish();
}

fn bench_ids_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("ids_rate");
    for ids in [0.05, 0.15, 1.0] {
        let mut p = Params::default()
            .with_domains(10, 3)
            .with_applications(4, 7);
        p.ids_rate = ids;
        let des = ItuaDes::new(p).unwrap();
        g.bench_function(BenchmarkId::from_parameter(ids), |b| {
            b.iter(|| black_box(run_batch(&des, 20)));
        });
    }
    g.finish();
}

fn bench_system_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_scale");
    for (name, domains, hosts, apps) in [
        ("small_4x1_2apps", 4usize, 1usize, 2usize),
        ("baseline_10x3_4apps", 10, 3, 4),
        ("large_12x4_8apps", 12, 4, 8),
    ] {
        let des = ItuaDes::new(
            Params::default()
                .with_domains(domains, hosts)
                .with_applications(apps, 7),
        )
        .unwrap();
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(run_batch(&des, 20)));
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(15);
    targets = bench_schemes, bench_spread, bench_ids_latency, bench_system_scale
}
criterion_main!(ablations);

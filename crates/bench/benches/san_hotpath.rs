//! Hot-path benchmark for the SAN execution engine, with a tracked
//! baseline.
//!
//! Four scenarios isolate the costs the SAN backend pays per replication:
//!
//! * `stabilize_heavy` — a token cascades through a long chain of
//!   instantaneous activities on every timed firing, so nearly all time
//!   goes into `stabilize` (enabling checks + uniform choice).
//! * `reschedule_heavy` — many exponential activities all read one hub
//!   place that every firing mutates, so nearly all time goes into the
//!   timed reschedule loop (cancel + resample).
//! * `figure3_point_san` / `figure3_point_des` — one real figure-3 sweep
//!   point per simulation backend, through the production `Backend::run`
//!   path with per-thread scratch reuse.
//!
//! Reported numbers are the **median ns per replication** over several
//! timed rounds (first round discarded as warmup). `--json PATH` writes
//! the tracked `BENCH_san.json`: the `current` block is overwritten with
//! this run's medians while the `baseline` block (the pre-optimization
//! medians recorded when the file was first created) is preserved, so the
//! perf trajectory stays visible in the repo. `--quick` runs each
//! scenario once per round for CI smoke coverage.
//!
//! Usage: `cargo bench -p itua-bench --bench san_hotpath -- [--quick]
//! [--json PATH] [--only NAME]` (or `cargo xtask bench-json`).

use itua_core::params::Params;
use itua_runner::backend::{Backend, BackendKind, ItuaBackend};
use itua_runner::json::Json;
use itua_san::model::{San, SanBuilder};
use itua_san::simulator::SanSimulator;
use itua_sim::rng::stream_seed;
use std::sync::Arc;
use std::time::Instant;

/// Base seed for every scenario's replication streams.
const BENCH_SEED: u64 = 0xB_E4C;

/// Instantaneous-chain length of the stabilize-heavy model.
const STAGES: usize = 48;
/// Hub-coupled exponential activities of the reschedule-heavy model.
const HUB_ACTIVITIES: usize = 64;

/// A timed activity pumps tokens into a chain of `STAGES` instantaneous
/// activities; each pump firing triggers a full cascade, so stabilization
/// dominates the run.
fn stabilize_heavy_model() -> Arc<San> {
    let mut b = SanBuilder::new("stabilize_heavy");
    let stages: Vec<_> = (0..STAGES)
        .map(|i| b.place(format!("stage{i}"), 0))
        .collect();
    b.timed_activity("pump", 100.0)
        .output_arc(stages[0], 1)
        .build()
        .unwrap();
    for i in 0..STAGES - 1 {
        b.instantaneous_activity(format!("step{i}"))
            .input_arc(stages[i], 1)
            .output_arc(stages[i + 1], 1)
            .build()
            .unwrap();
    }
    b.instantaneous_activity("drain")
        .input_arc(stages[STAGES - 1], 1)
        .build()
        .unwrap();
    b.finish().unwrap()
}

/// `HUB_ACTIVITIES` exponential activities whose marking-dependent rates
/// all read one hub place, which every firing mutates — each firing
/// forces a cancel + resample of every activity, so the timed reschedule
/// loop dominates the run.
fn reschedule_heavy_model() -> Arc<San> {
    let mut b = SanBuilder::new("reschedule_heavy");
    let hub = b.place("hub", 0);
    for i in 0..HUB_ACTIVITIES {
        let phase = i as f64;
        b.timed_activity_fn(
            format!("work{i}"),
            Arc::new(move |m| 0.5 + 0.01 * ((f64::from(m.get(hub)) + phase) % 7.0)),
            &[hub],
        )
        .output_arc(hub, 1)
        .build()
        .unwrap();
    }
    b.finish().unwrap()
}

/// The figure-3 sweep point used for the end-to-end scenarios: 12 hosts
/// as 3 domains of 4, two applications of 7 replicas, the study horizon.
fn figure3_params() -> Params {
    Params::default().with_domains(3, 4).with_applications(2, 7)
}

const FIGURE3_HORIZON: f64 = 5.0;

struct Scenario {
    name: &'static str,
    /// Replications per timed round (full mode).
    reps: u64,
    run: Box<dyn FnMut(u64)>,
}

fn raw_san_scenario(name: &'static str, reps: u64, model: Arc<San>, horizon: f64) -> Scenario {
    let sim = SanSimulator::new(model);
    let mut scratch = sim.scratch();
    Scenario {
        name,
        reps,
        run: Box::new(move |rep| {
            sim.run_with_scratch(stream_seed(BENCH_SEED, rep), horizon, &mut [], &mut scratch)
                .unwrap();
        }),
    }
}

fn backend_scenario(name: &'static str, reps: u64, kind: BackendKind) -> Scenario {
    let backend = ItuaBackend::for_params(kind, &figure3_params()).unwrap();
    let mut scratch = backend.scratch();
    Scenario {
        name,
        reps,
        run: Box::new(move |rep| {
            backend
                .run(
                    stream_seed(BENCH_SEED, rep),
                    FIGURE3_HORIZON,
                    &[FIGURE3_HORIZON],
                    &mut scratch,
                )
                .unwrap();
        }),
    }
}

fn scenarios() -> Vec<Scenario> {
    vec![
        raw_san_scenario("stabilize_heavy", 40, stabilize_heavy_model(), 10.0),
        raw_san_scenario("reschedule_heavy", 40, reschedule_heavy_model(), 20.0),
        backend_scenario("figure3_point_san", 6, BackendKind::San),
        backend_scenario("figure3_point_des", 60, BackendKind::Des),
    ]
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Times one scenario: `rounds` rounds of `reps` replications each (after
/// one discarded warmup round), returning the median ns/replication.
fn measure(sc: &mut Scenario, rounds: usize, quick: bool) -> f64 {
    let reps = if quick { 1 } else { sc.reps };
    let mut rep = 0u64;
    for _ in 0..reps {
        (sc.run)(rep);
        rep += 1;
    }
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..reps {
            (sc.run)(rep);
            rep += 1;
        }
        samples.push(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    median(samples)
}

/// Resolves a `--json` path: relative paths are anchored at the
/// workspace root (cargo runs bench binaries with cwd = crates/bench).
fn resolve_json_path(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return p.to_owned();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root two levels up")
        .join(p)
}

/// Rewrites `path`: `current` gets this run's medians; `baseline` is kept
/// from the existing file (or seeded with this run's medians when the
/// file does not exist or has no baseline).
fn write_tracked_json(path: &std::path::Path, results: &[(String, f64)]) -> std::io::Result<()> {
    let current = Json::Obj(
        results
            .iter()
            .map(|(name, ns)| (name.clone(), Json::Num(ns.round())))
            .collect(),
    );
    let baseline = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|doc| doc.get("baseline").cloned())
        .unwrap_or_else(|| current.clone());
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("itua-san-hotpath-v1".into())),
        ("unit".into(), Json::Str("median ns per replication".into())),
        ("baseline".into(), baseline),
        ("current".into(), current),
    ]);
    std::fs::write(path, format!("{doc}\n"))
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "--test" => quick = true,
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--only" => only = Some(args.next().expect("--only needs a scenario name")),
            "--bench" => {} // passed by `cargo bench`
            other => panic!("unknown argument '{other}' (try --quick, --json PATH, --only NAME)"),
        }
    }
    let rounds = if quick { 1 } else { 9 };

    let mut results: Vec<(String, f64)> = Vec::new();
    for mut sc in scenarios() {
        if only.as_deref().is_some_and(|o| o != sc.name) {
            continue;
        }
        let ns = measure(&mut sc, rounds, quick);
        println!("{:<22} {:>14.0} ns/replication", sc.name, ns);
        results.push((sc.name.to_owned(), ns));
    }
    assert!(!results.is_empty(), "no scenario matched --only filter");

    if let Some(path) = json_path {
        let path = resolve_json_path(&path);
        write_tracked_json(&path, &results).expect("writing tracked bench JSON");
        println!("wrote {}", path.display());
    }
}

//! The scenario layer's contract with the legacy figure path: identical
//! stores, stable `.scn` round-trips.

use itua_bench::driver;
use itua_runner::progress::NullProgress;
use itua_scenario::file::FileScenario;
use itua_scenario::registry;
use itua_studies::study;
use itua_studies::sweep::{RunOpts, SweepConfig};
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itua-scn-eq-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_cfg() -> SweepConfig {
    SweepConfig {
        replications: 2,
        ..SweepConfig::default()
    }
}

fn opts_into(dir: &Path, threads: usize) -> RunOpts<'static> {
    let mut opts = RunOpts::default();
    opts.runner = opts.runner.with_threads(threads);
    opts.progress = &NullProgress;
    opts.results_dir = Some(dir.to_path_buf());
    opts
}

#[test]
fn scenario_store_is_byte_identical_to_the_legacy_study_store() {
    let cfg = small_cfg();

    let legacy_dir = temp_dir("legacy");
    let legacy = study::by_id("sensitivity").unwrap();
    legacy.run_with(&cfg, &opts_into(&legacy_dir, 1)).unwrap();

    let scn_dir = temp_dir("scenario");
    let scenario = registry::find("sensitivity").unwrap();
    scenario.run(&cfg, &opts_into(&scn_dir, 1)).unwrap();

    // And thread count must not matter either (CI byte-diffs at 1 and 8).
    let scn_dir_t2 = temp_dir("scenario-t2");
    scenario.run(&cfg, &opts_into(&scn_dir_t2, 2)).unwrap();

    let legacy_bytes = fs::read(legacy_dir.join("sensitivity.json")).unwrap();
    let scn_bytes = fs::read(scn_dir.join("sensitivity.json")).unwrap();
    let scn_bytes_t2 = fs::read(scn_dir_t2.join("sensitivity.json")).unwrap();
    assert!(!legacy_bytes.is_empty());
    assert_eq!(legacy_bytes, scn_bytes);
    assert_eq!(scn_bytes, scn_bytes_t2);
}

fn example_files() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios");
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("examples/scenarios exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "scn"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_shipped_scenario_file_round_trips_parse_hash_parse() {
    let files = example_files();
    assert!(
        files.len() >= 3,
        "expected the shipped examples, got {files:?}"
    );
    for path in files {
        let text = fs::read_to_string(&path).unwrap();
        let parsed = FileScenario::parse(&text, "stem").unwrap_or_else(|e| {
            panic!("{}: {e}", path.display());
        });
        let reparsed = FileScenario::parse(&parsed.to_string(), "other-stem").unwrap();
        assert_eq!(parsed, reparsed, "{}", path.display());
        assert_eq!(
            parsed.content_hash(),
            reparsed.content_hash(),
            "{}",
            path.display()
        );
    }
}

#[test]
fn shipped_scenario_files_resolve_and_compose() {
    use itua_runner::backend::BackendKind;
    for path in example_files() {
        let scenario = driver::resolve(path.to_str().unwrap()).unwrap_or_else(|e| {
            panic!("{e}");
        });
        let points = scenario.points(BackendKind::Des);
        assert!(!points.is_empty(), "{}", path.display());
        for p in &points {
            p.params.validate().unwrap();
        }
        // File scenarios must contribute their identity to the store
        // fingerprint, unlike built-ins.
        let parts = scenario.fingerprint_parts();
        assert_eq!(parts.len(), 1, "{}", path.display());
        assert!(parts[0].starts_with("scn="), "{}", path.display());
    }
}

#[test]
fn tail_split_example_pins_its_execution_settings() {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios/tail-split.scn");
    let scenario = driver::resolve(path.to_str().unwrap()).unwrap();
    let mut cfg = SweepConfig::default();
    let mut split = None;
    scenario.configure(&mut cfg, &mut split);
    assert_eq!(cfg.replications, 400);
    assert_eq!(split.unwrap().to_string(), "1x8,2x4");
}

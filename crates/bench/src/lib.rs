//! Shared helpers for the figure-regeneration binaries and benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;

use itua_analyzer::AnalysisConfig;
use itua_core::{analysis, san_model};
use itua_rare::SplitSpec;
use itua_runner::backend::{BackendKind, BackendOptions, ModelCheck};
use itua_runner::engine::RunnerConfig;
use itua_runner::progress::{ConsoleProgress, NullProgress, Progress};
use itua_studies::sweep::{RunOpts, SweepConfig, SweepPoint};
use std::path::PathBuf;

/// Parses the common CLI options of the figure binaries.
///
/// Supported arguments:
///
/// * `--backend des|san|analytic` — which backend runs the study: the
///   direct discrete-event simulator (default), the composed stochastic
///   activity network, or the exact CTMC solver (small configurations
///   only; figure binaries substitute their exact-solvable micro
///   variant); all run through the same pipeline and report the same
///   measure names,
/// * `--reps N` — replications per sweep point (default 2000),
/// * `--seed S` — base seed,
/// * `--csv` — also print the figure as CSV,
/// * `--threads N` — worker threads (default: one per core; results are
///   identical for every choice),
/// * `--batch N` — replications per batched backend call (default 32;
///   purely an amortisation knob, results are identical for every
///   choice),
/// * `--max-states N` — state budget: for the analytic backend, the
///   bound on generated states before a configuration is rejected
///   (default 1000000 lumped, 100000 unlumped); for `itua check
///   --exhaustive`, the exploration budget in quotient states (default
///   2^20),
/// * `--lump` / `--no-lump` — solve the analytic backend on the exact
///   symmetry-lumped chain (the default) or on the full tangible state
///   space. Lumping collapses interchangeable domains/hosts/replicas
///   into orbit representatives — same measures, orders of magnitude
///   fewer states; `--no-lump` reproduces the pre-lumping stores byte
///   for byte,
/// * `--results DIR` — result-store directory (default `results/`),
/// * `--no-resume` — disable the result store: re-simulate every point
///   and write no results file,
/// * `--check` — run the full structural analyzer over every distinct
///   model of the study before simulating and exit with status 2 if any
///   hard finding surfaces (see [`check_models`]),
/// * `--no-check` — skip even the quick pre-simulation model check that
///   `run_measures` performs by default,
/// * `--exhaustive` — `itua check` only: explore the full reachability
///   graph (quotiented by the model's domain/host/replica symmetry) and
///   *prove* the conservation families, exact place bounds, and `.scn`
///   assertions over every reachable marking, cross-validating the
///   explorer against the analytic state-space builder and the
///   unreduced oracle (see [`driver::check_scenario`]),
/// * `--json` — `itua check` only: machine-readable findings on stdout,
/// * `--split-levels SPEC` — run every point through RESTART importance
///   splitting on the corrupt-domain-count level. `SPEC` is
///   comma-separated `<threshold>x<factor>` pairs with strictly
///   increasing thresholds (e.g. `1x8,2x4`: split 8-for-1 when the count
///   first reaches 1, a further 4-for-1 at 2); `none` (or an empty spec)
///   selects the splitting machinery with no thresholds, which
///   reproduces the plain path bit for bit. Splitting runs checkpoint
///   into a separate `-split` store. Applies to the DES and SAN
///   backends; the analytic backend ignores it (exact, nothing to
///   simulate),
/// * `--quiet` — suppress progress output on stderr.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureCli {
    /// Which backend runs the sweep.
    pub backend: BackendKind,
    /// Backend construction options (`--max-states`).
    pub backend_opts: BackendOptions,
    /// Sweep configuration assembled from the flags.
    pub cfg: SweepConfig,
    /// Whether to print CSV after the tables.
    pub csv: bool,
    /// Worker threads (`0` = one per core).
    pub threads: usize,
    /// Replications per batched backend call (`0` is treated as 1).
    pub batch_size: u32,
    /// Result-store directory; `None` disables checkpoint/resume.
    pub results_dir: Option<PathBuf>,
    /// Whether `--check` requested the full pre-simulation analysis.
    pub check: bool,
    /// Whether `--no-check` disabled the default quick model check.
    pub no_check: bool,
    /// Whether `itua check --exhaustive` requested the exhaustive
    /// reachability checker instead of the structural probe.
    pub exhaustive: bool,
    /// Whether `itua check --json` requested machine-readable findings.
    pub json: bool,
    /// Explicit `--max-states` value, when given; the exhaustive checker
    /// uses it as its state budget (default 2^20 quotient states), the
    /// analytic backend as its tangible-state bound (default 100000).
    pub check_max_states: Option<usize>,
    /// RESTART splitting thresholds (`--split-levels`); `None` runs the
    /// plain replication loop.
    pub split: Option<SplitSpec>,
    /// Whether progress output is suppressed.
    pub quiet: bool,
}

impl FigureCli {
    /// Parses `std::env::args`-style arguments (excluding `argv[0]`).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these are
    /// developer-facing binaries).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cli = FigureCli {
            backend: BackendKind::Des,
            backend_opts: BackendOptions::default(),
            cfg: SweepConfig::default(),
            csv: false,
            threads: 0,
            batch_size: RunnerConfig::default().batch_size,
            results_dir: Some(PathBuf::from("results")),
            check: false,
            no_check: false,
            exhaustive: false,
            json: false,
            check_max_states: None,
            split: None,
            quiet: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--backend" => {
                    cli.backend = it
                        .next()
                        .and_then(|v| BackendKind::parse(&v))
                        .unwrap_or_else(|| panic!("--backend needs 'des', 'san', or 'analytic'"));
                }
                "--reps" => {
                    cli.cfg.replications = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--reps needs a positive integer"));
                }
                "--seed" => {
                    cli.cfg.base_seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                "--max-states" => {
                    let n = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| panic!("--max-states needs a positive integer"));
                    cli.backend_opts.analytic_max_states = Some(n);
                    cli.check_max_states = Some(n);
                }
                "--lump" => cli.backend_opts.analytic_lump = true,
                "--no-lump" => cli.backend_opts.analytic_lump = false,
                "--csv" => cli.csv = true,
                "--threads" => {
                    cli.threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--threads needs a non-negative integer"));
                }
                "--batch" => {
                    cli.batch_size = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--batch needs a non-negative integer"));
                }
                "--results" => {
                    cli.results_dir =
                        Some(PathBuf::from(it.next().unwrap_or_else(|| {
                            panic!("--results needs a directory path")
                        })));
                }
                "--no-resume" => cli.results_dir = None,
                "--check" => cli.check = true,
                "--no-check" => cli.no_check = true,
                "--exhaustive" => cli.exhaustive = true,
                "--json" => cli.json = true,
                "--split-levels" => {
                    let spec = it
                        .next()
                        .unwrap_or_else(|| panic!("--split-levels needs a spec like '1x8,2x4'"));
                    cli.split = Some(spec.parse().unwrap_or_else(|e| {
                        panic!("--split-levels: {e}");
                    }));
                }
                "--quiet" => cli.quiet = true,
                other => panic!(
                    "unknown argument '{other}' (try --backend des|san|analytic, \
                     --reps N, --seed S, --csv, --max-states N, --lump, --no-lump, \
                     --threads N, --batch N, --results DIR, --no-resume, --check, \
                     --no-check, --exhaustive, --json, --split-levels SPEC, --quiet)"
                ),
            }
        }
        cli
    }

    /// The progress reporter these flags select.
    pub fn progress(&self) -> Box<dyn Progress> {
        if self.quiet {
            Box::new(NullProgress)
        } else {
            Box::new(ConsoleProgress::new())
        }
    }

    /// Execution options for `run_with`, borrowing `progress` (obtain it
    /// from [`FigureCli::progress`]).
    pub fn opts<'a>(&self, progress: &'a dyn Progress) -> RunOpts<'a> {
        let runner = RunnerConfig::default()
            .with_threads(self.threads)
            .with_batch_size(self.batch_size);
        // The analytic kernel is bit-identical at any thread count, so
        // the simulators' worker count doubles as its matvec width.
        let mut backend_opts = self.backend_opts;
        backend_opts.analytic_threads = runner.effective_threads();
        RunOpts {
            backend: self.backend,
            backend_opts,
            runner,
            progress,
            results_dir: self.results_dir.clone(),
            check: if self.no_check {
                ModelCheck::Off
            } else {
                ModelCheck::Quick
            },
            split: self.split.clone(),
            fingerprint_extra: Vec::new(),
        }
    }

    /// Runs `--check` (when requested) over a study's sweep points and
    /// exits with status 2 on hard findings. Call before `run_with`.
    pub fn run_check_or_exit(&self, points: &[SweepPoint]) {
        if self.check && check_models(points) {
            eprintln!("model check failed: hard findings above");
            std::process::exit(2);
        }
    }
}

/// Runs the full structural analyzer ([`analysis::full_report`]) over
/// every *distinct* parameter set among `points`, printing one structured
/// report per model. Returns whether any hard finding surfaced (the
/// caller should exit nonzero).
pub fn check_models(points: &[SweepPoint]) -> bool {
    let cfg = AnalysisConfig::default();
    let mut seen: Vec<String> = Vec::new();
    let mut any_hard = false;
    for point in points {
        let key = format!("{:?}", point.params);
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        println!("--- model check: {} (x = {}) ---", point.series, point.x);
        match san_model::build(&point.params) {
            Ok(model) => {
                let report = analysis::full_report(&model, &cfg);
                print!("{}", report.render(&model.san));
                if report.has_hard_findings() {
                    any_hard = true;
                }
            }
            Err(e) => {
                println!("model construction failed: {e}");
                any_hard = true;
            }
        }
    }
    any_hard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults() {
        let cli = FigureCli::parse(Vec::<String>::new());
        assert_eq!(cli.backend, BackendKind::Des);
        assert_eq!(cli.backend_opts, BackendOptions::default());
        assert_eq!(cli.cfg.replications, 2000);
        assert_eq!(cli.batch_size, RunnerConfig::default().batch_size);
        assert!(!cli.csv);
        assert_eq!(cli.threads, 0);
        assert_eq!(cli.results_dir, Some(PathBuf::from("results")));
        assert!(!cli.check);
        assert!(!cli.no_check);
        assert!(!cli.quiet);
    }

    #[test]
    fn parses_flags() {
        let cli = FigureCli::parse(
            [
                "--backend",
                "san",
                "--reps",
                "50",
                "--seed",
                "9",
                "--csv",
                "--threads",
                "4",
                "--batch",
                "4",
                "--results",
                "out",
                "--check",
                "--quiet",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(cli.backend, BackendKind::San);
        assert_eq!(cli.cfg.replications, 50);
        assert_eq!(cli.cfg.base_seed, 9);
        assert!(cli.csv);
        assert_eq!(cli.threads, 4);
        assert_eq!(cli.batch_size, 4);
        assert_eq!(cli.results_dir, Some(PathBuf::from("out")));
        assert!(cli.check);
        assert!(cli.quiet);
    }

    #[test]
    fn parses_analytic_backend_and_max_states() {
        let cli = FigureCli::parse(
            ["--backend", "analytic", "--max-states", "5000"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(cli.backend, BackendKind::Analytic);
        assert_eq!(cli.backend_opts.analytic_max_states, Some(5000));
        assert!(cli.backend_opts.analytic_lump, "lumping is the default");
        let progress = cli.progress();
        let opts = cli.opts(progress.as_ref());
        assert_eq!(opts.backend, BackendKind::Analytic);
        assert_eq!(opts.backend_opts.analytic_max_states, Some(5000));
    }

    #[test]
    fn parses_lump_flags() {
        let cli = FigureCli::parse(["--no-lump".to_owned()]);
        assert!(!cli.backend_opts.analytic_lump);
        let cli = FigureCli::parse(["--no-lump".to_owned(), "--lump".to_owned()]);
        assert!(cli.backend_opts.analytic_lump, "last flag wins");
        // The runner's effective thread count feeds the analytic kernel.
        let cli = FigureCli::parse(["--threads".to_owned(), "6".to_owned()]);
        let progress = cli.progress();
        let opts = cli.opts(progress.as_ref());
        assert_eq!(opts.backend_opts.analytic_threads, 6);
    }

    #[test]
    fn parses_exhaustive_json_and_check_budget() {
        let cli = FigureCli::parse(
            ["--exhaustive", "--json", "--max-states", "50000"]
                .into_iter()
                .map(String::from),
        );
        assert!(cli.exhaustive);
        assert!(cli.json);
        assert_eq!(cli.check_max_states, Some(50000));
        assert_eq!(cli.backend_opts.analytic_max_states, Some(50000));
        // Absent --max-states leaves the exhaustive budget at its own
        // default rather than inheriting the analytic bound.
        let cli = FigureCli::parse(Vec::<String>::new());
        assert!(!cli.exhaustive);
        assert!(!cli.json);
        assert_eq!(cli.check_max_states, None);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_max_states() {
        FigureCli::parse(["--max-states".to_owned(), "0".to_owned()]);
    }

    #[test]
    fn parses_split_levels() {
        let cli = FigureCli::parse(["--split-levels".to_owned(), "1x8,2x4".to_owned()]);
        let spec = cli.split.clone().unwrap();
        assert_eq!(spec.to_string(), "1x8,2x4");
        let progress = cli.progress();
        let opts = cli.opts(progress.as_ref());
        assert_eq!(opts.split, Some(spec));
        // `none` selects the splitting machinery with no thresholds.
        let cli = FigureCli::parse(["--split-levels".to_owned(), "none".to_owned()]);
        assert_eq!(cli.split, Some(SplitSpec::none()));
        // Default: plain path.
        assert_eq!(FigureCli::parse(Vec::<String>::new()).split, None);
    }

    #[test]
    #[should_panic]
    fn rejects_malformed_split_levels() {
        FigureCli::parse(["--split-levels".to_owned(), "2x4,1x8".to_owned()]);
    }

    #[test]
    fn no_resume_disables_the_store() {
        let cli = FigureCli::parse(["--no-resume".to_owned()]);
        assert_eq!(cli.results_dir, None);
    }

    #[test]
    fn opts_reflect_flags() {
        let cli = FigureCli::parse(["--threads".to_owned(), "3".to_owned()]);
        let progress = cli.progress();
        let opts = cli.opts(progress.as_ref());
        assert_eq!(opts.backend, BackendKind::Des);
        assert_eq!(opts.runner.effective_threads(), 3);
        assert_eq!(opts.results_dir, Some(PathBuf::from("results")));
        assert_eq!(opts.check, ModelCheck::Quick);
    }

    #[test]
    fn no_check_turns_the_quick_check_off() {
        let cli = FigureCli::parse(["--no-check".to_owned()]);
        assert!(cli.no_check);
        let progress = cli.progress();
        let opts = cli.opts(progress.as_ref());
        assert_eq!(opts.check, ModelCheck::Off);
    }

    #[test]
    fn check_models_accepts_a_clean_micro_model() {
        use itua_core::params::Params;
        let params = Params::default().with_domains(1, 2).with_applications(1, 2);
        let points = vec![
            SweepPoint {
                x: 2.0,
                series: "micro".to_owned(),
                params: params.clone(),
                horizon: 1.0,
                sample_times: vec![1.0],
            },
            // A duplicate parameter set must be analyzed only once; the
            // easiest observable proxy is that the call stays fast and
            // still reports no hard findings.
            SweepPoint {
                x: 2.0,
                series: "micro".to_owned(),
                params,
                horizon: 1.0,
                sample_times: vec![1.0],
            },
        ];
        assert!(!check_models(&points));
    }

    #[test]
    #[should_panic]
    fn rejects_unknown_flag() {
        FigureCli::parse(["--nope".to_owned()]);
    }
}

//! Shared helpers for the figure-regeneration binaries and benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use itua_studies::sweep::SweepConfig;

/// Parses the common CLI options of the figure binaries.
///
/// Supported arguments:
///
/// * `--reps N` — replications per sweep point (default 2000),
/// * `--seed S` — base seed,
/// * `--csv` — also print the figure as CSV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureCli {
    /// Sweep configuration assembled from the flags.
    pub cfg: SweepConfig,
    /// Whether to print CSV after the tables.
    pub csv: bool,
}

impl FigureCli {
    /// Parses `std::env::args`-style arguments (excluding `argv[0]`).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these are
    /// developer-facing binaries).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cfg = SweepConfig::default();
        let mut csv = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--reps" => {
                    cfg.replications = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--reps needs a positive integer"));
                }
                "--seed" => {
                    cfg.base_seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                "--csv" => csv = true,
                other => panic!("unknown argument '{other}' (try --reps N, --seed S, --csv)"),
            }
        }
        FigureCli { cfg, csv }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults() {
        let cli = FigureCli::parse(Vec::<String>::new());
        assert_eq!(cli.cfg.replications, 2000);
        assert!(!cli.csv);
    }

    #[test]
    fn parses_flags() {
        let cli = FigureCli::parse(
            ["--reps", "50", "--seed", "9", "--csv"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(cli.cfg.replications, 50);
        assert_eq!(cli.cfg.base_seed, 9);
        assert!(cli.csv);
    }

    #[test]
    #[should_panic]
    fn rejects_unknown_flag() {
        FigureCli::parse(["--nope".to_owned()]);
    }
}

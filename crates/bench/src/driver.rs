//! The shared drive path behind the `itua` CLI and the legacy figure
//! shims: resolve a scenario, fold its pinned settings into the CLI
//! flags, optionally pre-flight the structural analyzer, run, print.

use crate::{check_models, FigureCli};
use itua_runner::backend::BackendKind;
use itua_scenario::file::FileScenario;
use itua_scenario::{registry, Scenario};
use itua_studies::table;
use std::path::Path;

/// Resolves a scenario argument: a built-in name from the registry, or
/// a path to a user-authored `.scn` file (recognized by its extension
/// or a path separator).
///
/// # Errors
///
/// A human-readable message for an unknown name, an unreadable file, or
/// a scenario file that fails to parse/validate.
pub fn resolve(arg: &str) -> Result<Box<dyn Scenario>, String> {
    if arg.ends_with(".scn") || arg.contains('/') {
        let text = std::fs::read_to_string(arg).map_err(|e| format!("cannot read '{arg}': {e}"))?;
        let stem = Path::new(arg)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("scenario");
        let scenario = FileScenario::parse(&text, stem).map_err(|e| format!("{arg}: {e}"))?;
        Ok(Box::new(scenario))
    } else {
        registry::find(arg).ok_or_else(|| {
            let names: Vec<String> = registry::registry()
                .iter()
                .map(|s| s.name().to_owned())
                .collect();
            format!(
                "unknown scenario '{arg}' (built-ins: {}; or a path to a .scn file)",
                names.join(", ")
            )
        })
    }
}

/// Runs `scenario` under the parsed CLI flags and prints its figures.
/// Returns the process exit code: 0 on success, 1 on a runtime error,
/// 2 when `--check` surfaced hard analyzer findings.
pub fn run_scenario(scenario: &dyn Scenario, cli: &FigureCli) -> i32 {
    let mut cfg = cli.cfg;
    let mut split = cli.split.clone();
    scenario.configure(&mut cfg, &mut split);
    if cli.check && check_models(&scenario.points(cli.backend)) {
        eprintln!("model check failed: hard findings above");
        return 2;
    }
    let progress = cli.progress();
    let mut opts = cli.opts(progress.as_ref());
    opts.split = split;
    match scenario.run(&cfg, &opts) {
        Ok(figures) => {
            for fig in figures {
                println!("{}", table::render(&fig));
                if cli.csv {
                    println!("{}", table::to_csv(&fig));
                }
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// Runs the full structural analyzer over every distinct model of the
/// scenario's sweep (for `backend`). Returns the process exit code:
/// 0 when clean, 2 on hard findings.
pub fn check_scenario(scenario: &dyn Scenario, backend: BackendKind) -> i32 {
    if check_models(&scenario.points(backend)) {
        eprintln!("model check failed: hard findings above");
        2
    } else {
        println!(
            "scenario '{}' passed the structural model check",
            scenario.name()
        );
        0
    }
}

/// Entry point of the legacy figure binaries: each is now a shim that
/// runs its built-in scenario with unchanged flags, output, and result
/// stores.
pub fn shim_main(name: &str) -> ! {
    let cli = FigureCli::parse(std::env::args().skip(1));
    let scenario = registry::find(name).expect("shim names a shipped scenario");
    std::process::exit(run_scenario(scenario.as_ref(), &cli));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Box<dyn Scenario>` has no `Debug`, so `unwrap_err` can't be used.
    fn expect_err(r: Result<Box<dyn Scenario>, String>) -> String {
        match r {
            Ok(s) => panic!("expected an error, resolved '{}'", s.name()),
            Err(e) => e,
        }
    }

    #[test]
    fn resolve_finds_builtins_and_rejects_unknowns() {
        assert_eq!(resolve("figure3").unwrap().name(), "figure3");
        assert_eq!(resolve("all-figures").unwrap().name(), "all-figures");
        let err = expect_err(resolve("figure9"));
        assert!(err.contains("unknown scenario"));
        assert!(err.contains("figure3"));
    }

    #[test]
    fn resolve_parses_scn_files_and_reports_their_errors() {
        let dir = std::env::temp_dir().join("itua-driver-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("mini.scn");
        std::fs::write(
            &good,
            "domains = 2\nhosts-per-domain = 1\napps = 1\nreps-per-app = 3\n\
             sweep = spread-rate-domain\nvalues = 0, 4\nmeasures = unavailability\n",
        )
        .unwrap();
        let s = resolve(good.to_str().unwrap()).unwrap();
        assert_eq!(s.name(), "mini"); // file stem fallback
        assert_eq!(s.points(BackendKind::Des).len(), 2);

        let bad = dir.join("bad.scn");
        std::fs::write(&bad, "sweep = nope\n").unwrap();
        let err = expect_err(resolve(bad.to_str().unwrap()));
        assert!(err.contains("bad.scn"), "{err}");
        assert!(err.contains("line 1"), "{err}");

        let err = expect_err(resolve(dir.join("absent.scn").to_str().unwrap()));
        assert!(err.contains("cannot read"));
    }
}

//! The shared drive path behind the `itua` CLI and the legacy figure
//! shims: resolve a scenario, fold its pinned settings into the CLI
//! flags, optionally pre-flight the structural analyzer, run, print.

use crate::{check_models, FigureCli};
use itua_analyzer::reach::{self, ReachConfig};
use itua_analyzer::{AnalysisConfig, Finding, Severity};
use itua_core::{analysis, san_model};
use itua_scenario::assert::MarkingAssert;
use itua_scenario::file::FileScenario;
use itua_scenario::{registry, Scenario};
use itua_studies::sweep::SweepPoint;
use itua_studies::table;
use std::fmt::Write as _;
use std::path::Path;

/// Resolves a scenario argument: a built-in name from the registry, or
/// a path to a user-authored `.scn` file (recognized by its extension
/// or a path separator).
///
/// # Errors
///
/// A human-readable message for an unknown name, an unreadable file, or
/// a scenario file that fails to parse/validate.
pub fn resolve(arg: &str) -> Result<Box<dyn Scenario>, String> {
    if arg.ends_with(".scn") || arg.contains('/') {
        let text = std::fs::read_to_string(arg).map_err(|e| format!("cannot read '{arg}': {e}"))?;
        let stem = Path::new(arg)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("scenario");
        let scenario = FileScenario::parse(&text, stem).map_err(|e| format!("{arg}: {e}"))?;
        Ok(Box::new(scenario))
    } else {
        registry::find(arg).ok_or_else(|| {
            let names: Vec<String> = registry::registry()
                .iter()
                .map(|s| s.name().to_owned())
                .collect();
            format!(
                "unknown scenario '{arg}' (built-ins: {}; or a path to a .scn file)",
                names.join(", ")
            )
        })
    }
}

/// Analytic-feasibility summary for one scenario, shown by `itua list`:
/// lumped vs full tangible state counts on the scenario's smallest
/// analytic sweep point, probed under the unlumped default budget
/// ([`ItuaAnalytic::DEFAULT_MAX_STATES`]), or `too large` when even the
/// symmetry quotient exceeds it.
pub fn analytic_feasibility(scenario: &dyn Scenario) -> String {
    use itua_core::analytic::ItuaAnalytic;
    use itua_runner::backend::BackendKind;
    use itua_san::statespace::StateSpace;

    let budget = ItuaAnalytic::DEFAULT_MAX_STATES;
    let points = scenario.points(BackendKind::Analytic);
    // Smallest point: fewest hosts, then fewest replicas — the cheapest
    // configuration the analytic backend would be asked to flatten.
    let Some(point) = points.iter().min_by_key(|p| {
        (
            p.params.num_domains * p.params.hosts_per_domain,
            p.params.num_apps * p.params.reps_per_app,
        )
    }) else {
        return "no points".to_owned();
    };
    let Ok(model) = san_model::build(&point.params) else {
        return "model build failed".to_owned();
    };
    let sym = analysis::symmetry_spec(&model);
    let lumped = StateSpace::generate_lumped(&model.san, &sym, budget)
        .ok()
        .map(|ss| ss.num_states());
    let full = StateSpace::generate(&model.san, budget)
        .ok()
        .map(|ss| ss.num_states());
    match (lumped, full) {
        (Some(l), Some(f)) => format!("analytic: lumped {l} / full {f} states"),
        (Some(l), None) => format!("analytic: lumped {l} states (full >{budget})"),
        (None, _) => format!("analytic: too large (>{budget} even lumped)"),
    }
}

/// Runs `scenario` under the parsed CLI flags and prints its figures.
/// Returns the process exit code: 0 on success, 1 on a runtime error,
/// 2 when `--check` surfaced hard analyzer findings.
pub fn run_scenario(scenario: &dyn Scenario, cli: &FigureCli) -> i32 {
    let mut cfg = cli.cfg;
    let mut split = cli.split.clone();
    scenario.configure(&mut cfg, &mut split);
    if cli.check && check_models(&scenario.points(cli.backend)) {
        eprintln!("model check failed: hard findings above");
        return 2;
    }
    let progress = cli.progress();
    let mut opts = cli.opts(progress.as_ref());
    opts.split = split;
    match scenario.run(&cfg, &opts) {
        Ok(figures) => {
            for fig in figures {
                println!("{}", table::render(&fig));
                if cli.csv {
                    println!("{}", table::to_csv(&fig));
                }
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// Default exhaustive-exploration budget when `--max-states` is absent
/// (quotient states; matches [`ReachConfig::default`]).
const DEFAULT_CHECK_MAX_STATES: usize = 1 << 20;

/// Runs the model check over every distinct model of the scenario's
/// sweep (for `--backend`; the analytic backend selects a study's micro
/// variant, which is the exhaustive checker's natural target). Returns
/// the process exit code: 0 when clean, 2 on hard findings, budget
/// exhaustion, or a cross-validation mismatch.
///
/// Two modes:
///
/// * structural (default): [`check_models`]'s closure-probing analyzer;
/// * `--exhaustive`: explore the full reachability graph under the
///   model's domain/host/replica symmetry and *prove* every
///   conservation family, exact place bounds, livelock freedom, and the
///   scenario's `assert` claims over every reachable marking — then
///   cross-validate the explorer's tangible projection against
///   `statespace.rs` (state count and transition multiset must match
///   bit for bit) and the quotient against the unreduced oracle.
///
/// `--json` switches either mode's report to one machine-readable JSON
/// object on stdout.
pub fn check_scenario(scenario: &dyn Scenario, cli: &FigureCli) -> i32 {
    let points = scenario.points(cli.backend);
    if cli.exhaustive {
        exhaustive_check_points(scenario, &points, cli)
    } else if cli.json {
        structural_check_json(scenario, &points)
    } else if check_models(&points) {
        eprintln!("model check failed: hard findings above");
        2
    } else {
        println!(
            "scenario '{}' passed the structural model check",
            scenario.name()
        );
        0
    }
}

/// The distinct parameter sets among `points`, keeping first-seen order
/// and one representative point for labeling.
fn distinct_models(points: &[SweepPoint]) -> Vec<&SweepPoint> {
    let mut seen: Vec<String> = Vec::new();
    let mut out = Vec::new();
    for point in points {
        let key = format!("{:?}", point.params);
        if !seen.contains(&key) {
            seen.push(key);
            out.push(point);
        }
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn findings_json(findings: &[Finding]) -> String {
    let items: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"id\":\"{}\",\"severity\":\"{}\",\"subject\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(&f.id),
                match f.severity {
                    Severity::Hard => "hard",
                    Severity::Soft => "soft",
                },
                json_escape(&f.subject),
                json_escape(&f.detail)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// `--json` without `--exhaustive`: the structural analyzer's findings
/// per distinct model, as one JSON object.
fn structural_check_json(scenario: &dyn Scenario, points: &[SweepPoint]) -> i32 {
    let cfg = AnalysisConfig::default();
    let mut models = Vec::new();
    let mut any_hard = false;
    for point in distinct_models(points) {
        let (findings, error) = match san_model::build(&point.params) {
            Ok(model) => (analysis::full_report(&model, &cfg).findings, String::new()),
            Err(e) => {
                any_hard = true;
                (Vec::new(), e.to_string())
            }
        };
        any_hard |= findings.iter().any(|f| f.severity == Severity::Hard);
        let mut obj = format!(
            "{{\"series\":\"{}\",\"x\":{},\"findings\":{}",
            json_escape(&point.series),
            point.x,
            findings_json(&findings)
        );
        if !error.is_empty() {
            let _ = write!(obj, ",\"error\":\"{}\"", json_escape(&error));
        }
        obj.push('}');
        models.push(obj);
    }
    println!(
        "{{\"scenario\":\"{}\",\"mode\":\"structural\",\"models\":[{}],\"hard\":{}}}",
        json_escape(scenario.name()),
        models.join(","),
        any_hard
    );
    i32::from(any_hard) * 2
}

/// A successful exhaustive run: the proof report, the quotient-vs-full
/// oracle, the statespace cross-validation, and one `(assert,
/// violation)` pair per scenario claim (`None` = proved).
type ExhaustiveProof = (
    analysis::ExhaustiveReport,
    analysis::OracleAgreement,
    analysis::CrossValidation,
    Vec<(MarkingAssert, Option<String>)>,
);

/// One model's exhaustive-check outcome, for rendering.
struct ExhaustiveOutcome {
    series: String,
    x: f64,
    /// `Err`: a budget/build/validation failure (always exit 2).
    result: Result<ExhaustiveProof, String>,
}

/// Evaluates the scenario's `assert` claims over every state of the
/// *unreduced* reachability graph (an arbitrary place glob need not be
/// closed under the symmetry group, so quotient representatives would
/// not be sound witnesses). Returns one `(assert, violation)` pair per
/// claim; `None` means proved.
fn prove_asserts(
    san: &std::sync::Arc<itua_san::model::San>,
    asserts: &[MarkingAssert],
    max_states: usize,
) -> Result<Vec<(MarkingAssert, Option<String>)>, String> {
    if asserts.is_empty() {
        return Ok(Vec::new());
    }
    let matched: Vec<Vec<usize>> = asserts
        .iter()
        .map(|a| {
            (0..san.num_places())
                .filter(|&p| a.matches(san.place_name(itua_san::marking::PlaceId::from_index(p))))
                .collect()
        })
        .collect();
    for (a, places) in asserts.iter().zip(&matched) {
        if places.is_empty() {
            return Err(format!(
                "assert '{a}': the place glob matches no place of this model"
            ));
        }
    }
    let graph = reach::explore(
        san,
        &ReachConfig::with_max_states(max_states),
        None,
        |_, _, _, _, _| {},
    )
    .map_err(|e| format!("assert proof: {e}"))?;
    let mut violations: Vec<Option<String>> = vec![None; asserts.len()];
    for state in &graph.states {
        for (i, (a, places)) in asserts.iter().zip(&matched).enumerate() {
            if violations[i].is_some() {
                continue;
            }
            let values: Vec<i32> = places.iter().map(|&p| state[p]).collect();
            if !a.holds(&values) {
                violations[i] = Some(format!(
                    "violated in a reachable marking: matched tokens {values:?}"
                ));
            }
        }
    }
    Ok(asserts.iter().cloned().zip(violations).collect())
}

/// `--exhaustive`: prove properties over the full reachable space of
/// every distinct model, cross-validating the explorer both ways.
fn exhaustive_check_points(scenario: &dyn Scenario, points: &[SweepPoint], cli: &FigureCli) -> i32 {
    let max_states = cli.check_max_states.unwrap_or(DEFAULT_CHECK_MAX_STATES);
    let asserts = scenario.asserts();
    let mut outcomes = Vec::new();
    for point in distinct_models(points) {
        let result = san_model::build(&point.params)
            .map_err(|e| format!("model construction failed: {e}"))
            .and_then(|model| {
                let report =
                    analysis::exhaustive_check(&model, max_states).map_err(|e| e.to_string())?;
                let oracle = analysis::quotient_oracle(&model, max_states)?;
                let cross = analysis::cross_validate(&model, max_states)?;
                let proved = prove_asserts(&model.san, &asserts, max_states)?;
                Ok((report, oracle, cross, proved))
            });
        outcomes.push(ExhaustiveOutcome {
            series: point.series.clone(),
            x: point.x,
            result,
        });
    }
    let any_hard = outcomes.iter().any(|o| match &o.result {
        Ok((report, _, _, proved)) => {
            report.has_hard_findings() || proved.iter().any(|(_, v)| v.is_some())
        }
        Err(_) => true,
    });
    if cli.json {
        print_exhaustive_json(scenario, &outcomes, max_states, any_hard);
    } else {
        print_exhaustive_text(scenario, &outcomes, any_hard);
    }
    i32::from(any_hard) * 2
}

fn print_exhaustive_text(scenario: &dyn Scenario, outcomes: &[ExhaustiveOutcome], hard: bool) {
    for o in outcomes {
        println!("--- exhaustive check: {} (x = {}) ---", o.series, o.x);
        match &o.result {
            Ok((report, oracle, cross, proved)) => {
                print!("{}", report.render());
                println!(
                    "oracle: quotient {} states vs unreduced {} — orbit sums agree",
                    oracle.quotient_states, oracle.full_states
                );
                println!(
                    "cross-validation: tangible projection matches statespace.rs \
                     ({} states, {} transitions, bit-identical rates)",
                    cross.tangible_states, cross.transitions
                );
                for (a, violation) in proved {
                    match violation {
                        None => println!("assert {a}: proved over every reachable marking"),
                        Some(v) => println!("assert {a}: FAILED — {v}"),
                    }
                }
            }
            Err(e) => println!("FAILED: {e}"),
        }
    }
    if hard {
        eprintln!("exhaustive model check failed");
    } else {
        println!(
            "scenario '{}' passed the exhaustive model check",
            scenario.name()
        );
    }
}

fn print_exhaustive_json(
    scenario: &dyn Scenario,
    outcomes: &[ExhaustiveOutcome],
    max_states: usize,
    hard: bool,
) {
    let models: Vec<String> = outcomes
        .iter()
        .map(|o| {
            let mut obj = format!("{{\"series\":\"{}\",\"x\":{}", json_escape(&o.series), o.x);
            match &o.result {
                Ok((report, oracle, cross, proved)) => {
                    let asserts: Vec<String> = proved
                        .iter()
                        .map(|(a, v)| match v {
                            None => format!(
                                "{{\"assert\":\"{}\",\"proved\":true}}",
                                json_escape(&a.to_string())
                            ),
                            Some(v) => format!(
                                "{{\"assert\":\"{}\",\"proved\":false,\"detail\":\"{}\"}}",
                                json_escape(&a.to_string()),
                                json_escape(v)
                            ),
                        })
                        .collect();
                    let _ = write!(
                        obj,
                        ",\"quotient_states\":{},\"quotient_tangible\":{},\
                         \"full_states\":{},\"full_tangible\":{},\
                         \"transitions\":{},\"deadlocks\":{},\
                         \"families_proved\":{},\
                         \"max_tokens\":{{\"place\":\"{}\",\"count\":{}}},\
                         \"oracle\":{{\"quotient_states\":{},\"full_states\":{}}},\
                         \"cross_validation\":{{\"tangible_states\":{},\"transitions\":{}}},\
                         \"asserts\":[{}],\"findings\":{}",
                        report.states,
                        report.tangible,
                        report.full_states,
                        report.full_tangible,
                        report.transitions,
                        report.deadlocks,
                        report.families_proved,
                        json_escape(&report.max_tokens_place),
                        report.max_tokens,
                        oracle.quotient_states,
                        oracle.full_states,
                        cross.tangible_states,
                        cross.transitions,
                        asserts.join(","),
                        findings_json(&report.findings)
                    );
                }
                Err(e) => {
                    let _ = write!(obj, ",\"error\":\"{}\"", json_escape(e));
                }
            }
            obj.push('}');
            obj
        })
        .collect();
    println!(
        "{{\"scenario\":\"{}\",\"mode\":\"exhaustive\",\"max_states\":{},\"models\":[{}],\
         \"hard\":{}}}",
        json_escape(scenario.name()),
        max_states,
        models.join(","),
        hard
    );
}

/// Entry point of the legacy figure binaries: each is now a shim that
/// runs its built-in scenario with unchanged flags, output, and result
/// stores.
pub fn shim_main(name: &str) -> ! {
    let cli = FigureCli::parse(std::env::args().skip(1));
    let scenario = registry::find(name).expect("shim names a shipped scenario");
    std::process::exit(run_scenario(scenario.as_ref(), &cli));
}

#[cfg(test)]
mod tests {
    use super::*;
    use itua_runner::backend::BackendKind;

    /// `Box<dyn Scenario>` has no `Debug`, so `unwrap_err` can't be used.
    fn expect_err(r: Result<Box<dyn Scenario>, String>) -> String {
        match r {
            Ok(s) => panic!("expected an error, resolved '{}'", s.name()),
            Err(e) => e,
        }
    }

    #[test]
    fn resolve_finds_builtins_and_rejects_unknowns() {
        assert_eq!(resolve("figure3").unwrap().name(), "figure3");
        assert_eq!(resolve("all-figures").unwrap().name(), "all-figures");
        let err = expect_err(resolve("figure9"));
        assert!(err.contains("unknown scenario"));
        assert!(err.contains("figure3"));
    }

    #[test]
    fn resolve_parses_scn_files_and_reports_their_errors() {
        let dir = std::env::temp_dir().join("itua-driver-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("mini.scn");
        std::fs::write(
            &good,
            "domains = 2\nhosts-per-domain = 1\napps = 1\nreps-per-app = 3\n\
             sweep = spread-rate-domain\nvalues = 0, 4\nmeasures = unavailability\n",
        )
        .unwrap();
        let s = resolve(good.to_str().unwrap()).unwrap();
        assert_eq!(s.name(), "mini"); // file stem fallback
        assert_eq!(s.points(BackendKind::Des).len(), 2);

        let bad = dir.join("bad.scn");
        std::fs::write(&bad, "sweep = nope\n").unwrap();
        let err = expect_err(resolve(bad.to_str().unwrap()));
        assert!(err.contains("bad.scn"), "{err}");
        assert!(err.contains("line 1"), "{err}");

        let err = expect_err(resolve(dir.join("absent.scn").to_str().unwrap()));
        assert!(err.contains("cannot read"));
    }

    fn micro_scn(dir: &std::path::Path, name: &str, extra: &str) -> Box<dyn Scenario> {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join(name);
        std::fs::write(
            &path,
            format!(
                "domains = 1\nhosts-per-domain = 2\napps = 1\nreps-per-app = 2\n\
                 sweep = spread-rate-domain\nvalues = 1\nmeasures = unavailability\n{extra}"
            ),
        )
        .unwrap();
        resolve(path.to_str().unwrap()).unwrap()
    }

    #[test]
    fn exhaustive_check_proves_a_micro_scn_with_asserts() {
        let dir = std::env::temp_dir().join("itua-driver-exhaustive");
        let scenario = micro_scn(
            &dir,
            "micro.scn",
            "assert = max(*/host_corrupt) <= 1\n\
             assert = sum(itua/apps[0]/*/has_started) <= 2\n",
        );
        let mut cli = FigureCli::parse(Vec::<String>::new());
        cli.exhaustive = true;
        cli.check_max_states = Some(200_000);
        assert_eq!(check_scenario(scenario.as_ref(), &cli), 0);
        cli.json = true;
        assert_eq!(check_scenario(scenario.as_ref(), &cli), 0);
    }

    #[test]
    fn exhaustive_check_rejects_budget_bad_globs_and_false_claims() {
        let dir = std::env::temp_dir().join("itua-driver-exhaustive");
        let mut cli = FigureCli::parse(Vec::<String>::new());
        cli.exhaustive = true;
        cli.check_max_states = Some(200_000);

        // A glob matching no place is a hard refusal, not a vacuous pass.
        let bad_glob = micro_scn(&dir, "badglob.scn", "assert = sum(nope/*) <= 1\n");
        assert_eq!(check_scenario(bad_glob.as_ref(), &cli), 2);

        // A claim the reachable space violates fails the check.
        let false_claim = micro_scn(&dir, "false.scn", "assert = max(*/host_corrupt) < 1\n");
        assert_eq!(check_scenario(false_claim.as_ref(), &cli), 2);

        // An exhausted state budget is a structured failure (exit 2).
        let plain = micro_scn(&dir, "plain.scn", "");
        cli.check_max_states = Some(3);
        assert_eq!(check_scenario(plain.as_ref(), &cli), 2);
    }

    #[test]
    fn structural_json_check_emits_exit_zero_on_clean_micro() {
        let dir = std::env::temp_dir().join("itua-driver-exhaustive");
        let scenario = micro_scn(&dir, "structural.scn", "");
        let mut cli = FigureCli::parse(Vec::<String>::new());
        cli.json = true;
        assert_eq!(check_scenario(scenario.as_ref(), &cli), 0);
    }
}

//! Regenerates the paper's Figure 4 (§4.2): hosts in 10 domains.

use itua_bench::FigureCli;
use itua_studies::{figure4, table};

fn main() {
    let cli = FigureCli::parse(std::env::args().skip(1));
    cli.run_check_or_exit(&figure4::points());
    let progress = cli.progress();
    let fig = figure4::run_with(&cli.cfg, &cli.opts(progress.as_ref())).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("{}", table::render(&fig));
    if cli.csv {
        println!("{}", table::to_csv(&fig));
    }
}

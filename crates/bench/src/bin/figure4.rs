//! Legacy shim for `itua run figure4` (§4.2: hosts in 10 domains).
//! Same flags, same output, byte-identical result stores.

fn main() {
    itua_bench::driver::shim_main("figure4");
}

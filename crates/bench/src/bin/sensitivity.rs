//! Regenerates the parameter-sensitivity study (§4's "we have also tried
//! to explore the system's sensitivity to variations in these parameters").

use itua_bench::FigureCli;
use itua_studies::{sensitivity, table};

fn main() {
    let cli = FigureCli::parse(std::env::args().skip(1));
    let progress = cli.progress();
    let fig = sensitivity::run_with(&cli.cfg, &cli.opts(progress.as_ref())).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("{}", table::render(&fig));
    if cli.csv {
        println!("{}", table::to_csv(&fig));
    }
}

//! Legacy shim for `itua run sensitivity` (§4's parameter-sensitivity
//! exploration). Same flags, same output, byte-identical result stores.

fn main() {
    itua_bench::driver::shim_main("sensitivity");
}

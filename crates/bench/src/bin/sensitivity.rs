//! Regenerates the parameter-sensitivity study (§4's "we have also tried
//! to explore the system's sensitivity to variations in these parameters").

use itua_bench::FigureCli;
use itua_studies::{sensitivity, table};

fn main() {
    let cli = FigureCli::parse(std::env::args().skip(1));
    let fig = sensitivity::run(&cli.cfg);
    println!("{}", table::render(&fig));
    if cli.csv {
        println!("{}", table::to_csv(&fig));
    }
}

//! Regenerates every figure of the paper in one run.

use itua_bench::FigureCli;
use itua_runner::backend::BackendKind;
use itua_studies::{figure3, figure4, figure5, table};

fn main() {
    let cli = FigureCli::parse(std::env::args().skip(1));
    let mut points = match cli.backend {
        BackendKind::Analytic => figure3::micro_points(),
        _ => figure3::points(),
    };
    points.extend(figure4::points());
    points.extend(figure5::points());
    cli.run_check_or_exit(&points);
    let progress = cli.progress();
    let opts = cli.opts(progress.as_ref());
    for run in [figure3::run_with, figure4::run_with, figure5::run_with] {
        let fig = run(&cli.cfg, &opts).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        println!("{}", table::render(&fig));
        if cli.csv {
            println!("{}", table::to_csv(&fig));
        }
    }
}

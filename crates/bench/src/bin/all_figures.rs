//! Regenerates every figure of the paper in one run.

use itua_bench::FigureCli;
use itua_studies::{figure3, figure4, figure5, table};

fn main() {
    let cli = FigureCli::parse(std::env::args().skip(1));
    for fig in [
        figure3::run(&cli.cfg),
        figure4::run(&cli.cfg),
        figure5::run(&cli.cfg),
    ] {
        println!("{}", table::render(&fig));
        if cli.csv {
            println!("{}", table::to_csv(&fig));
        }
    }
}

//! Legacy shim for `itua run all-figures` (Figures 3–5 in one run).
//! Same flags, same output, byte-identical result stores.

fn main() {
    itua_bench::driver::shim_main("all-figures");
}

//! Calibration search over the paper's undocumented parameters.
//!
//! Evaluates each candidate against the qualitative claims of §4 (the
//! figure shapes) and prints a scorecard. Used to pick the repository's
//! defaults; see DESIGN.md §5 and EXPERIMENTS.md.

use itua_core::measures::{names, MeasureSet};
use itua_core::params::{ManagementScheme, Params};
use itua_runner::backend::{run_measures, BackendKind, ItuaBackend};
use itua_runner::engine::RunnerConfig;
use itua_runner::progress::NullProgress;

#[derive(Clone, Copy, Debug)]
struct Candidate {
    f: f64,   // effective_rate_factor
    rw: f64,  // attack_weight_replica
    mw: f64,  // attack_weight_manager
    ids: f64, // ids_rate
}

fn apply(p: Params, c: Candidate) -> Params {
    let mut p = p;
    p.effective_rate_factor = c.f;
    p.attack_weight_replica = c.rw;
    p.attack_weight_manager = c.mw;
    p.ids_rate = c.ids;
    p
}

fn measure(p: Params, reps: u32, horizon: f64) -> MeasureSet {
    // Same pipeline as the studies: per-thread scratch reuse, worker
    // threads, quick pre-simulation model check — estimates are
    // bit-identical for every thread count.
    let backend = ItuaBackend::for_params(BackendKind::Des, &p).unwrap();
    run_measures(
        &backend,
        reps,
        0.95,
        0,
        horizon,
        &[horizon],
        &RunnerConfig::default(),
        &NullProgress,
    )
    .unwrap()
}

fn main() {
    let reps = 600;
    let grid = [
        Candidate {
            f: 0.5,
            rw: 0.5,
            mw: 2.5,
            ids: 0.15,
        },
        Candidate {
            f: 0.5,
            rw: 0.5,
            mw: 3.0,
            ids: 0.1,
        },
        Candidate {
            f: 0.6,
            rw: 0.5,
            mw: 3.0,
            ids: 0.15,
        },
        Candidate {
            f: 0.5,
            rw: 1.0,
            mw: 2.5,
            ids: 0.15,
        },
        Candidate {
            f: 0.7,
            rw: 0.7,
            mw: 4.0,
            ids: 0.1,
        },
    ];
    for c in grid {
        println!("\n===== {c:?} =====");
        // Figure 3 (A=4): unreliability shape + exclusion level.
        let mut unrel = Vec::new();
        let mut excl = Vec::new();
        for &hpd in &[1usize, 2, 3, 4, 6, 12] {
            let p = apply(
                Params::default()
                    .with_domains(12 / hpd, hpd)
                    .with_applications(4, 7),
                c,
            );
            let ms = measure(p, reps, 5.0);
            unrel.push(ms.mean(names::UNRELIABILITY).unwrap_or(0.0));
            excl.push(
                ms.mean(&format!("{}@5", names::FRAC_DOMAINS_EXCLUDED))
                    .unwrap_or(0.0),
            );
        }
        let peak = unrel
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| [1, 2, 3, 4, 6, 12][i])
            .unwrap();
        println!("fig3b unrel: {unrel:.3?} peak at x={peak}");
        println!("fig3d excl:  {excl:.3?} (paper: ~0.2 → ~0.7)");

        // Figure 5: both schemes at spread 0 and 10, horizons 5 and 10.
        let base = Params::default()
            .with_domains(10, 3)
            .with_applications(4, 7)
            .with_host_corruption_multiplier(5.0);
        let row = |scheme: ManagementScheme, tag: &str| {
            let mut us = Vec::new();
            let mut rs = Vec::new();
            for &(spread, h) in &[(0.0, 5.0), (10.0, 5.0), (0.0, 10.0), (10.0, 10.0)] {
                let p = apply(base.clone().with_scheme(scheme).with_spread_rate(spread), c);
                let ms = measure(p, reps, h);
                us.push(ms.mean(names::UNAVAILABILITY).unwrap_or(0.0));
                rs.push(ms.mean(names::UNRELIABILITY).unwrap_or(0.0));
            }
            println!(
                "fig5 {tag}: unavail (s0,5h)={:.4} (s10,5h)={:.4} (s0,10h)={:.4} (s10,10h)={:.4}",
                us[0], us[1], us[2], us[3]
            );
            println!(
                "fig5 {tag}: unrel   (s0,5h)={:.4} (s10,5h)={:.4} (s0,10h)={:.4} (s10,10h)={:.4}",
                rs[0], rs[1], rs[2], rs[3]
            );
            (us, rs)
        };
        let (hu, hr) = row(ManagementScheme::HostExclusion, "host");
        let (du, dr) = row(ManagementScheme::DomainExclusion, "dom ");
        // Paper claims:
        let c1 = hu[0] < du[0]; // 5a: host better at low spread (5h)
        let c2 = (hu[1] - du[1]).abs() < du[1].max(0.02) * 0.75; // 5a: similar at high spread
        let c3 = dr[1] < hr[1]; // 5c: domain better at high spread (5h)
        let c4 = hr[0] <= dr[0] + 0.02; // 5c: host no worse at low spread
        let c5 = du[3] < hu[3]; // 5b: domain better at 10h high spread
        let c6 = dr[3] < hr[3]; // 5d: domain better at 10h high spread
        println!("claims: host-better-low5={c1} similar-high5={c2} domRel-better-high5={c3} hostRel-ok-low5={c4} domAvail-better-10h={c5} domRel-better-10h={c6}");
    }
}

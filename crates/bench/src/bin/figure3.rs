//! Regenerates the paper's Figure 3 (§4.1): distributions of 12 hosts.

use itua_bench::FigureCli;
use itua_studies::{figure3, table};

fn main() {
    let cli = FigureCli::parse(std::env::args().skip(1));
    let fig = figure3::run(&cli.cfg);
    println!("{}", table::render(&fig));
    if cli.csv {
        println!("{}", table::to_csv(&fig));
    }
}

//! Legacy shim for `itua run figure3` (§4.1: distributions of 12 hosts).
//! Same flags, same output, byte-identical result stores.

fn main() {
    itua_bench::driver::shim_main("figure3");
}

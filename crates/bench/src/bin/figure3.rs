//! Regenerates the paper's Figure 3 (§4.1): distributions of 12 hosts.

use itua_bench::FigureCli;
use itua_runner::backend::BackendKind;
use itua_studies::{figure3, table};

fn main() {
    let cli = FigureCli::parse(std::env::args().skip(1));
    // The analytic backend runs the exact-solvable micro variant, so
    // --check must analyze the models that will actually be built.
    cli.run_check_or_exit(&match cli.backend {
        BackendKind::Analytic => figure3::micro_points(),
        _ => figure3::points(),
    });
    let progress = cli.progress();
    let fig = figure3::run_with(&cli.cfg, &cli.opts(progress.as_ref())).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("{}", table::render(&fig));
    if cli.csv {
        println!("{}", table::to_csv(&fig));
    }
}

//! Unified experiment CLI over the scenario registry.
//!
//! * `itua list` — the built-in scenarios (with their analytic
//!   feasibility: lumped vs full tangible state count on each
//!   scenario's smallest sweep point) and the `.scn` file format.
//! * `itua run <scenario|file.scn> [flags]` — run a scenario; flags are
//!   exactly the legacy figure-binary flags (see `FigureCli`).
//! * `itua check <scenario|file.scn> [flags]` — run the full structural
//!   analyzer over the scenario's models without simulating; exit 2 on
//!   hard findings (or an invalid scenario file).

use itua_bench::{driver, FigureCli};
use itua_scenario::registry;

const USAGE: &str = "\
usage: itua <command> [arguments]

commands:
  list                         list the built-in scenarios, each with its
                               analytic feasibility (symmetry-lumped vs full
                               tangible state count on its smallest point)
  run <scenario|file.scn>      run a scenario (flags: --backend des|san|analytic,
                               --reps N, --seed S, --csv, --threads N, --batch N,
                               --max-states N, --results DIR, --no-resume,
                               --check, --no-check, --split-levels SPEC, --quiet)
  check <scenario|file.scn>    model check only, no simulation (--backend selects
                               which points are analyzed; --backend analytic picks
                               a study's micro variant); exit 2 on hard findings.
                               --exhaustive proves the conservation families,
                               exact place bounds, and .scn assert claims over
                               every reachable marking (symmetry-reduced, budget
                               --max-states N, default 2^20), cross-validating
                               the explorer against the analytic state-space
                               builder and the unreduced oracle; --json emits
                               machine-readable findings
  help                         show this message

A scenario argument is a built-in name (see `itua list`) or a path to a
user-authored `.scn` file (`key = value` lines; see EXPERIMENTS.md).";

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    match cmd.as_str() {
        "list" => {
            for scenario in registry::registry() {
                println!(
                    "{:<12} {}\n{:<12}   [{}]",
                    scenario.name(),
                    scenario.description(),
                    "",
                    driver::analytic_feasibility(scenario.as_ref()),
                );
            }
            println!("{:<12} a user-authored scenario file", "<file.scn>");
        }
        "run" | "check" => {
            let Some(target) = args.next() else {
                eprintln!("itua {cmd}: missing scenario (built-in name or .scn path)");
                std::process::exit(2);
            };
            let scenario = driver::resolve(&target).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            let cli = FigureCli::parse(args);
            let code = if cmd == "check" {
                driver::check_scenario(scenario.as_ref(), &cli)
            } else {
                driver::run_scenario(scenario.as_ref(), &cli)
            };
            std::process::exit(code);
        }
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => {
            eprintln!("itua: unknown command '{other}'\n{USAGE}");
            std::process::exit(2);
        }
    }
}

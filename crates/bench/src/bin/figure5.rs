//! Legacy shim for `itua run figure5` (§4.3: exclusion-scheme comparison).
//! Same flags, same output, byte-identical result stores.

fn main() {
    itua_bench::driver::shim_main("figure5");
}

//! Regenerates the paper's Figure 5 (§4.3): exclusion-scheme comparison.

use itua_bench::FigureCli;
use itua_studies::{figure5, table};

fn main() {
    let cli = FigureCli::parse(std::env::args().skip(1));
    cli.run_check_or_exit(&figure5::points());
    let progress = cli.progress();
    let fig = figure5::run_with(&cli.cfg, &cli.opts(progress.as_ref())).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("{}", table::render(&fig));
    if cli.csv {
        println!("{}", table::to_csv(&fig));
    }
}

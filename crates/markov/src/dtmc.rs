//! Discrete-time Markov chains.
//!
//! Used for the embedded chains of CTMCs and for vanishing-marking
//! elimination in the SAN state-space generator.

use crate::sparse::{CsrMatrix, SparseError};
use std::fmt;

/// Error from DTMC construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum DtmcError {
    /// Underlying matrix problem.
    Sparse(SparseError),
    /// A probability was outside `[0, 1]` or a row did not sum to 1.
    BadRow {
        /// Offending row.
        row: usize,
        /// Its sum.
        sum: f64,
    },
    /// Iterative solver failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual when giving up.
        residual: f64,
    },
}

impl fmt::Display for DtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtmcError::Sparse(e) => write!(f, "sparse matrix error: {e}"),
            DtmcError::BadRow { row, sum } => {
                write!(
                    f,
                    "row {row} of a stochastic matrix sums to {sum}, expected 1"
                )
            }
            DtmcError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (residual {residual:e})"
                )
            }
        }
    }
}

impl std::error::Error for DtmcError {}

impl From<SparseError> for DtmcError {
    fn from(e: SparseError) -> Self {
        DtmcError::Sparse(e)
    }
}

/// A discrete-time Markov chain with a row-stochastic transition matrix.
///
/// # Example
///
/// ```
/// use itua_markov::dtmc::Dtmc;
///
/// // Weather chain: sunny stays sunny w.p. 0.9.
/// let dtmc = Dtmc::from_triplets(2, &[
///     (0, 0, 0.9), (0, 1, 0.1),
///     (1, 0, 0.5), (1, 1, 0.5),
/// ]).unwrap();
/// let pi = dtmc.stationary(1e-12, 100_000).unwrap();
/// assert!((pi[0] - 5.0 / 6.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Dtmc {
    p: CsrMatrix,
}

impl Dtmc {
    /// Builds a DTMC from `(from, to, probability)` triplets.
    ///
    /// # Errors
    ///
    /// Each row must sum to 1 (±1e-9); probabilities must be in `[0, 1]`.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<Self, DtmcError> {
        let p = CsrMatrix::from_triplets(n, n, triplets)?;
        for r in 0..n {
            let sum = p.row_sum(r);
            if (sum - 1.0).abs() > 1e-9 {
                return Err(DtmcError::BadRow { row: r, sum });
            }
            for (_, v) in p.row(r) {
                if !(0.0..=1.0 + 1e-12).contains(&v) {
                    return Err(DtmcError::BadRow { row: r, sum: v });
                }
            }
        }
        Ok(Dtmc { p })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.p.rows()
    }

    /// The transition matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// One step: `x ↦ xᵀP`.
    pub fn step(&self, x: &[f64]) -> Vec<f64> {
        self.p.vec_mul(x)
    }

    /// Distribution after `k` steps from `initial`.
    pub fn distribution_after(&self, initial: &[f64], k: usize) -> Vec<f64> {
        let mut x = initial.to_vec();
        for _ in 0..k {
            x = self.step(&x);
        }
        x
    }

    /// Stationary distribution by power iteration (with heavy damping off:
    /// the chains we build are aperiodic because they come from
    /// uniformization with Λ strictly above the max exit rate).
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::NoConvergence`] if the L1 step change stays
    /// above `tol` for `max_iter` iterations.
    pub fn stationary(&self, tol: f64, max_iter: usize) -> Result<Vec<f64>, DtmcError> {
        let n = self.num_states();
        let mut x = vec![1.0 / n as f64; n];
        let mut residual = f64::INFINITY;
        for _ in 0..max_iter {
            let y = self.step(&x);
            residual = x.iter().zip(&y).map(|(a, b)| (a - b).abs()).sum();
            x = y;
            if residual < tol {
                let s: f64 = x.iter().sum();
                for v in &mut x {
                    *v /= s;
                }
                return Ok(x);
            }
        }
        Err(DtmcError::NoConvergence {
            iterations: max_iter,
            residual,
        })
    }

    /// Probability of being absorbed in each absorbing state, starting from
    /// `start`, computed by iterating the chain until the transient mass
    /// drops below `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::NoConvergence`] if transient mass remains after
    /// `max_iter` steps (e.g. the chain has a recurrent class that is not
    /// absorbing).
    pub fn absorption_probabilities(
        &self,
        start: usize,
        tol: f64,
        max_iter: usize,
    ) -> Result<Vec<f64>, DtmcError> {
        let n = self.num_states();
        assert!(start < n, "start state out of range");
        let absorbing: Vec<bool> = (0..n)
            .map(|s| self.p.row(s).all(|(t, v)| t == s || v == 0.0))
            .collect();
        let mut x = vec![0.0; n];
        x[start] = 1.0;
        for _ in 0..max_iter {
            let transient_mass: f64 = x
                .iter()
                .enumerate()
                .filter(|(s, _)| !absorbing[*s])
                .map(|(_, &v)| v)
                .sum();
            if transient_mass < tol {
                return Ok(x
                    .iter()
                    .enumerate()
                    .map(|(s, &v)| if absorbing[s] { v } else { 0.0 })
                    .collect());
            }
            x = self.step(&x);
        }
        Err(DtmcError::NoConvergence {
            iterations: max_iter,
            residual: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_stochastic_rows() {
        assert!(matches!(
            Dtmc::from_triplets(2, &[(0, 0, 0.5), (1, 0, 1.0)]),
            Err(DtmcError::BadRow { row: 0, .. })
        ));
    }

    #[test]
    fn step_and_distribution() {
        let d = Dtmc::from_triplets(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        // Period-2 chain: flips each step.
        assert_eq!(d.distribution_after(&[1.0, 0.0], 1), vec![0.0, 1.0]);
        assert_eq!(d.distribution_after(&[1.0, 0.0], 2), vec![1.0, 0.0]);
    }

    #[test]
    fn stationary_weather() {
        let d =
            Dtmc::from_triplets(2, &[(0, 0, 0.9), (0, 1, 0.1), (1, 0, 0.5), (1, 1, 0.5)]).unwrap();
        let pi = d.stationary(1e-13, 100_000).unwrap();
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-9);
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn absorption_gambler() {
        // Gambler's ruin on {0,1,2,3}, p = 0.5; states 0 and 3 absorbing.
        let d = Dtmc::from_triplets(
            4,
            &[
                (0, 0, 1.0),
                (1, 0, 0.5),
                (1, 2, 0.5),
                (2, 1, 0.5),
                (2, 3, 0.5),
                (3, 3, 1.0),
            ],
        )
        .unwrap();
        let probs = d.absorption_probabilities(1, 1e-12, 100_000).unwrap();
        // From state 1: ruin 2/3, win 1/3.
        assert!((probs[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((probs[3] - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(probs[1], 0.0);
    }

    #[test]
    fn absorption_fails_without_absorbing_reachability() {
        let d = Dtmc::from_triplets(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(d.absorption_probabilities(0, 1e-12, 1000).is_err());
    }
}

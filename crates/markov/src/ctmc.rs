//! Continuous-time Markov chains.
//!
//! A CTMC is stored as its infinitesimal generator `Q` (CSR). Provided
//! solvers:
//!
//! * [`Ctmc::transient`] — state distribution at time `t` by
//!   uniformization.
//! * [`Ctmc::expected_accumulated_reward`] — `E[∫₀ᵗ r(X(s)) ds]`, the
//!   quantity behind interval-of-time reward variables such as
//!   unavailability.
//! * [`Ctmc::steady_state`] — stationary distribution by Gauss–Seidel /
//!   power iteration on the uniformized chain.
//!
//! All uniformization solvers run on one sparse kernel: a *gather*
//! formulation of `y = xᵀ(I + Q/Λ)` over the transposed (incoming) CSR
//! structure, with ping-ponged iterate buffers (no per-step allocation).
//! Each output element accumulates its incoming terms in ascending-source
//! order with the self-loop term merged in at `s == t` — the exact
//! floating-point order the classic scatter formulation produces — so
//! results are bit-identical to the scatter kernel, and to themselves at
//! any thread count ([`Ctmc::with_threads`] splits output elements into
//! contiguous chunks, each computed by exactly one thread).

use crate::poisson::PoissonWeights;
use crate::sparse::{CsrMatrix, SparseError};
use std::fmt;

/// Error from CTMC construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// Underlying matrix problem.
    Sparse(SparseError),
    /// A transition rate was negative or non-finite.
    BadRate {
        /// Source state.
        from: usize,
        /// Destination state.
        to: usize,
        /// Offending rate.
        rate: f64,
    },
    /// A self-loop was supplied (diagonal entries are derived, not given).
    SelfLoop(usize),
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual when giving up.
        residual: f64,
    },
    /// The initial distribution was invalid (wrong length or not a
    /// probability vector).
    BadInitialDistribution,
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::Sparse(e) => write!(f, "sparse matrix error: {e}"),
            CtmcError::BadRate { from, to, rate } => {
                write!(f, "invalid rate {rate} for transition {from} → {to}")
            }
            CtmcError::SelfLoop(s) => write!(f, "self-loop on state {s} not allowed"),
            CtmcError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (residual {residual:e})"
                )
            }
            CtmcError::BadInitialDistribution => write!(f, "invalid initial distribution"),
        }
    }
}

impl std::error::Error for CtmcError {}

impl From<SparseError> for CtmcError {
    fn from(e: SparseError) -> Self {
        CtmcError::Sparse(e)
    }
}

/// A continuous-time Markov chain over states `0..n`.
///
/// # Example
///
/// ```
/// use itua_markov::ctmc::Ctmc;
///
/// // Pure birth chain 0 → 1 → 2 (absorbing), rate 1.
/// let ctmc = Ctmc::from_rates(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
/// let p = ctmc.transient(&[1.0, 0.0, 0.0], 1.0, 1e-12).unwrap();
/// // P[still in 0 at t=1] = e^{-1}
/// assert!((p[0] - (-1.0f64).exp()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Ctmc {
    n: usize,
    /// Off-diagonal rate matrix (diagonal implicit).
    rates: CsrMatrix,
    /// Transpose of `rates`: row `t` lists the *incoming* `(source, rate)`
    /// entries of state `t` in ascending source order — the structure the
    /// gather kernel walks.
    incoming: CsrMatrix,
    /// Exit rate of each state (sum of outgoing rates).
    exit_rates: Vec<f64>,
    /// Worker threads for the uniformized step (1 = inline). Never
    /// influences results: the gather kernel computes each output element
    /// independently in a fixed per-element order.
    threads: usize,
}

/// Below this state count the uniformized step always runs inline:
/// per-step thread spawns would cost more than the matvec itself.
const PARALLEL_CUTOFF: usize = 4096;

impl Ctmc {
    /// Builds a CTMC from off-diagonal transition rates
    /// `(from, to, rate)`. Duplicate transitions are summed.
    ///
    /// # Errors
    ///
    /// Rejects self-loops, negative or non-finite rates, and out-of-bounds
    /// states.
    pub fn from_rates(n: usize, transitions: &[(usize, usize, f64)]) -> Result<Self, CtmcError> {
        for &(from, to, rate) in transitions {
            if from == to {
                return Err(CtmcError::SelfLoop(from));
            }
            if !rate.is_finite() || rate < 0.0 {
                return Err(CtmcError::BadRate { from, to, rate });
            }
        }
        let rates = CsrMatrix::from_triplets(n, n, transitions)?;
        let incoming = rates.transpose();
        let exit_rates = (0..n).map(|s| rates.row_sum(s)).collect();
        Ok(Ctmc {
            n,
            rates,
            incoming,
            exit_rates,
            threads: 1,
        })
    }

    /// Sets the worker-thread count for the uniformized-step kernel and
    /// returns the chain. A value of 0 or 1 keeps the step inline. Thread
    /// count never influences results — each output element is computed
    /// by exactly one thread in a fixed per-element floating-point order —
    /// so solutions are byte-identical at any setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Worker threads configured for the uniformized-step kernel.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// The off-diagonal rate matrix.
    pub fn rates(&self) -> &CsrMatrix {
        &self.rates
    }

    /// Exit rate of state `s`.
    pub fn exit_rate(&self, s: usize) -> f64 {
        self.exit_rates[s]
    }

    /// The uniformization rate `Λ` (strictly larger than every exit rate so
    /// the uniformized DTMC is aperiodic).
    pub fn uniformization_rate(&self) -> f64 {
        let max_exit = self.exit_rates.iter().copied().fold(0.0, f64::max);
        if max_exit == 0.0 {
            1.0 // all-absorbing chain; any Λ works
        } else {
            max_exit * 1.02
        }
    }

    /// One step of the uniformized DTMC, `y = xᵀ P` with `P = I + Q/Λ`,
    /// written into the caller's buffer (every element overwritten).
    ///
    /// Gather formulation over the incoming CSR structure; splits the
    /// output into contiguous chunks across [`Ctmc::threads`] workers.
    /// Bit-identical to the scatter formulation at any thread count (see
    /// the module docs and [`Ctmc::uniformized_step_scatter`]).
    fn uniformized_step_into(&self, x: &[f64], lambda: f64, y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        if self.threads <= 1 || self.n < PARALLEL_CUTOFF {
            self.gather_chunk(x, lambda, y, 0);
            return;
        }
        let chunk = self.n.div_ceil(self.threads);
        std::thread::scope(|scope| {
            for (i, ys) in y.chunks_mut(chunk).enumerate() {
                scope.spawn(move || self.gather_chunk(x, lambda, ys, i * chunk));
            }
        });
    }

    /// Computes `y[j] = (xᵀP)[start + j]` for one contiguous output chunk.
    ///
    /// Each element accumulates its incoming terms in ascending-source
    /// order, with the self-loop term `x[t]·(1 − E[t]/Λ)` merged in at the
    /// position `s == t` — exactly the order in which the scatter
    /// formulation (outer loop over sources) adds contributions to `y[t]`,
    /// including its skip of zero-mass sources. Identical term order means
    /// identical rounding, so gather and scatter agree bit for bit.
    fn gather_chunk(&self, x: &[f64], lambda: f64, y: &mut [f64], start: usize) {
        for (j, yt) in y.iter_mut().enumerate() {
            let t = start + j;
            let xt = x[t];
            let mut acc = 0.0;
            let mut self_term_pending = xt != 0.0;
            for (s, r) in self.incoming.row(t) {
                if self_term_pending && s > t {
                    acc += xt * (1.0 - self.exit_rates[t] / lambda);
                    self_term_pending = false;
                }
                let xs = x[s];
                if xs != 0.0 {
                    acc += xs * r / lambda;
                }
            }
            if self_term_pending {
                acc += xt * (1.0 - self.exit_rates[t] / lambda);
            }
            *yt = acc;
        }
    }

    /// The original scatter formulation of the uniformized step, kept as
    /// the oracle the gather kernel is tested against bit for bit.
    #[cfg(test)]
    fn uniformized_step_scatter(&self, x: &[f64], lambda: f64) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        for (s, &xs) in x.iter().enumerate() {
            if xs == 0.0 {
                continue;
            }
            // Self-transition probability.
            y[s] += xs * (1.0 - self.exit_rates[s] / lambda);
            for (t, r) in self.rates.row(s) {
                y[t] += xs * r / lambda;
            }
        }
        y
    }

    /// Transient state distribution at time `t` from `initial`, to
    /// truncation accuracy `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::BadInitialDistribution`] if `initial` does not
    /// sum to ~1 or has the wrong length.
    pub fn transient(&self, initial: &[f64], t: f64, epsilon: f64) -> Result<Vec<f64>, CtmcError> {
        let mut multi = self.transient_multi(initial, &[t], epsilon)?;
        Ok(multi
            .pop()
            .expect("one time point in, one distribution out"))
    }

    /// Transient state distributions at several time points from one
    /// uniformization: the DTMC iterates `xᵏ = π₀ Pᵏ` are walked once up to
    /// the largest right-truncation point, and each requested time
    /// accumulates its own Poisson-weighted window along the way.
    ///
    /// Equivalent to calling [`Ctmc::transient`] per time (bit-identical
    /// results — the same floating-point operations run in the same order),
    /// but the dominant cost (the vector–matrix products) is paid once
    /// instead of once per time point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ctmc::transient`].
    pub fn transient_multi(
        &self,
        initial: &[f64],
        times: &[f64],
        epsilon: f64,
    ) -> Result<Vec<Vec<f64>>, CtmcError> {
        self.check_initial(initial)?;
        for &t in times {
            assert!(t >= 0.0 && t.is_finite(), "time must be finite nonnegative");
        }
        let lambda = self.uniformization_rate();
        let weights: Vec<Option<PoissonWeights>> = times
            .iter()
            .map(|&t| (t > 0.0).then(|| PoissonWeights::new(lambda * t, epsilon)))
            .collect();
        let right_max = weights.iter().flatten().map(|w| w.right).max();
        let mut acc: Vec<Vec<f64>> = times
            .iter()
            .map(|&t| {
                if t == 0.0 {
                    initial.to_vec()
                } else {
                    vec![0.0; self.n]
                }
            })
            .collect();
        let Some(right_max) = right_max else {
            return Ok(acc); // every requested time is 0
        };
        let mut x = initial.to_vec();
        let mut y = vec![0.0; self.n];
        for k in 0..=right_max {
            for (i, w) in weights.iter().enumerate() {
                let Some(w) = w else { continue };
                if k >= w.left && k <= w.right {
                    let wk = w.weights[k - w.left];
                    for s in 0..self.n {
                        acc[i][s] += wk * x[s];
                    }
                }
            }
            if k < right_max {
                self.uniformized_step_into(&x, lambda, &mut y);
                std::mem::swap(&mut x, &mut y);
            }
        }
        Ok(acc)
    }

    /// Expected accumulated reward `E[∫₀ᵗ r(X(s)) ds]` for per-state reward
    /// rates `reward`, via the standard uniformization summation.
    ///
    /// Dividing by `t` yields the interval-of-time (time-averaged) reward —
    /// e.g. unavailability when `reward` is the indicator of improper
    /// states.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ctmc::transient`].
    pub fn expected_accumulated_reward(
        &self,
        initial: &[f64],
        reward: &[f64],
        t: f64,
        epsilon: f64,
    ) -> Result<f64, CtmcError> {
        self.check_initial(initial)?;
        assert_eq!(reward.len(), self.n, "reward vector length");
        assert!(t >= 0.0 && t.is_finite());
        if t == 0.0 {
            return Ok(0.0);
        }
        let lambda = self.uniformization_rate();
        // E[∫₀ᵗ r ds] = (1/Λ) Σ_{k≥0} P[N ≥ k+1] · xᵏ·r  where xᵏ = π₀ Pᵏ.
        // Compute tail probabilities from the truncated weights.
        let weights = PoissonWeights::new(lambda * t, epsilon);
        // tail[k] = P[N >= k+1] for k = 0.. right
        // Build cumulative from the truncated window (mass outside is ~ε).
        let mut acc = 0.0;
        let mut x = initial.to_vec();
        let mut y = vec![0.0; self.n];
        // Precompute suffix sums of weights: P[N ≥ k+1] for window indices.
        let mut suffix = vec![0.0; weights.weights.len() + 1];
        for i in (0..weights.weights.len()).rev() {
            suffix[i] = suffix[i + 1] + weights.weights[i];
        }
        // For k < left: P[N ≥ k+1] ≈ 1.
        for _ in 0..weights.left {
            let r: f64 = x.iter().zip(reward).map(|(p, r)| p * r).sum();
            acc += r;
            self.uniformized_step_into(&x, lambda, &mut y);
            std::mem::swap(&mut x, &mut y);
        }
        for i in 0..weights.weights.len() {
            let tail = suffix[i + 1];
            if tail <= 0.0 {
                break;
            }
            let r: f64 = x.iter().zip(reward).map(|(p, r)| p * r).sum();
            acc += tail * r;
            if i + 1 < weights.weights.len() {
                self.uniformized_step_into(&x, lambda, &mut y);
                std::mem::swap(&mut x, &mut y);
            }
        }
        Ok(acc / lambda)
    }

    /// Stationary distribution `π` with `πQ = 0`, `Σπ = 1`, by power
    /// iteration on the uniformized DTMC.
    ///
    /// For a chain with absorbing states this converges to an absorbing
    /// distribution (which is a valid stationary distribution).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::NoConvergence`] if the L1 change between
    /// iterations has not dropped below `tol` within `max_iter` steps.
    pub fn steady_state(&self, tol: f64, max_iter: usize) -> Result<Vec<f64>, CtmcError> {
        let lambda = self.uniformization_rate();
        let mut x = vec![1.0 / self.n as f64; self.n];
        let mut y = vec![0.0; self.n];
        let mut residual = f64::INFINITY;
        for _ in 0..max_iter {
            self.uniformized_step_into(&x, lambda, &mut y);
            residual = x.iter().zip(&y).map(|(a, b)| (a - b).abs()).sum::<f64>();
            std::mem::swap(&mut x, &mut y);
            if residual < tol {
                // Renormalize against drift.
                let s: f64 = x.iter().sum();
                for v in &mut x {
                    *v /= s;
                }
                return Ok(x);
            }
        }
        Err(CtmcError::NoConvergence {
            iterations: max_iter,
            residual,
        })
    }

    /// Expected time to absorption (mean time to failure when the
    /// absorbing states are failure states), starting from `initial`.
    ///
    /// Solves `(I − P) m = 1/Λ` on the transient states of the uniformized
    /// chain by Gauss–Seidel, where `m[s]` is the expected remaining time.
    ///
    /// # Errors
    ///
    /// * [`CtmcError::BadInitialDistribution`] for an invalid `initial`;
    /// * [`CtmcError::NoConvergence`] if some transient state cannot reach
    ///   an absorbing state (expected time infinite) or the solver stalls.
    pub fn mean_time_to_absorption(
        &self,
        initial: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> Result<f64, CtmcError> {
        self.check_initial(initial)?;
        let absorbing: Vec<bool> = (0..self.n).map(|s| self.exit_rates[s] == 0.0).collect();
        if absorbing.iter().all(|&a| a) {
            return Ok(0.0);
        }
        let lambda = self.uniformization_rate();
        // m[s] = 1/Λ + Σ_t P[s→t] m[t] for transient s; m = 0 on absorbing.
        let mut m = vec![0.0; self.n];
        for iter in 0..max_iter {
            let mut delta = 0.0f64;
            for s in 0..self.n {
                if absorbing[s] {
                    continue;
                }
                let mut acc = 1.0 / lambda;
                // Self-loop probability of the uniformized chain.
                let p_self = 1.0 - self.exit_rates[s] / lambda;
                for (t, r) in self.rates.row(s) {
                    acc += (r / lambda) * m[t];
                }
                // Solve for m[s] with the self-loop folded in:
                // m[s] = acc + p_self·m[s]  ⇒  m[s] = acc / (1 − p_self).
                let new = acc / (1.0 - p_self);
                delta = delta.max((new - m[s]).abs());
                m[s] = new;
            }
            if delta < tol {
                let mtta: f64 = initial.iter().zip(&m).map(|(p, mi)| p * mi).sum();
                if !mtta.is_finite() {
                    return Err(CtmcError::NoConvergence {
                        iterations: iter,
                        residual: f64::INFINITY,
                    });
                }
                return Ok(mtta);
            }
        }
        Err(CtmcError::NoConvergence {
            iterations: max_iter,
            residual: f64::INFINITY,
        })
    }

    /// Probability of having been absorbed by time `t`, starting from
    /// `initial` (the transient mass on absorbing states).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ctmc::transient`].
    pub fn absorption_by(&self, initial: &[f64], t: f64, epsilon: f64) -> Result<f64, CtmcError> {
        let p = self.transient(initial, t, epsilon)?;
        Ok(p.iter()
            .enumerate()
            .filter(|&(s, _)| self.exit_rates[s] == 0.0)
            .map(|(_, &pi)| pi)
            .sum())
    }

    fn check_initial(&self, initial: &[f64]) -> Result<(), CtmcError> {
        if initial.len() != self.n {
            return Err(CtmcError::BadInitialDistribution);
        }
        let sum: f64 = initial.iter().sum();
        if (sum - 1.0).abs() > 1e-9 || initial.iter().any(|&p| !(0.0..=1.0 + 1e-12).contains(&p)) {
            return Err(CtmcError::BadInitialDistribution);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state repairable system: failure rate λ, repair rate μ.
    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        Ctmc::from_rates(2, &[(0, 1, lambda), (1, 0, mu)]).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            Ctmc::from_rates(2, &[(0, 0, 1.0)]),
            Err(CtmcError::SelfLoop(0))
        ));
        assert!(matches!(
            Ctmc::from_rates(2, &[(0, 1, -1.0)]),
            Err(CtmcError::BadRate { .. })
        ));
        assert!(Ctmc::from_rates(2, &[(0, 3, 1.0)]).is_err());
    }

    #[test]
    fn transient_two_state_closed_form() {
        // P00(t) = μ/(λ+μ) + λ/(λ+μ) e^{-(λ+μ)t}
        let (l, m) = (1.0, 3.0);
        let ctmc = two_state(l, m);
        for &t in &[0.0, 0.1, 0.5, 1.0, 5.0] {
            let p = ctmc.transient(&[1.0, 0.0], t, 1e-13).unwrap();
            let expected = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((p[0] - expected).abs() < 1e-9, "t = {t}: {p:?}");
            assert!((p[0] + p[1] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_pure_birth() {
        let ctmc = Ctmc::from_rates(3, &[(0, 1, 2.0), (1, 2, 2.0)]).unwrap();
        let t = 0.7;
        let p = ctmc.transient(&[1.0, 0.0, 0.0], t, 1e-13).unwrap();
        // Erlang stages: p0 = e^{-2t}, p1 = 2t e^{-2t}, p2 = rest.
        let e = (-2.0 * t).exp();
        assert!((p[0] - e).abs() < 1e-9);
        assert!((p[1] - 2.0 * t * e).abs() < 1e-9);
        assert!((p[2] - (1.0 - e - 2.0 * t * e)).abs() < 1e-9);
    }

    #[test]
    fn steady_state_two_state() {
        let ctmc = two_state(1.0, 9.0);
        let pi = ctmc.steady_state(1e-13, 100_000).unwrap();
        assert!((pi[0] - 0.9).abs() < 1e-9);
        assert!((pi[1] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn steady_state_birth_death() {
        // M/M/1-like truncated queue with arrival 1, service 2, 4 states.
        // π_k ∝ (1/2)^k.
        let ctmc = Ctmc::from_rates(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (1, 0, 2.0),
                (2, 1, 2.0),
                (3, 2, 2.0),
            ],
        )
        .unwrap();
        let pi = ctmc.steady_state(1e-13, 200_000).unwrap();
        let z: f64 = (0..4).map(|k| 0.5f64.powi(k)).sum();
        for (k, pik) in pi.iter().enumerate() {
            assert!((pik - 0.5f64.powi(k as i32) / z).abs() < 1e-8, "k = {k}");
        }
    }

    #[test]
    fn accumulated_reward_matches_integral() {
        // Two-state system, reward = 1 in down state → expected downtime.
        let (l, m) = (1.0, 3.0);
        let ctmc = two_state(l, m);
        let t = 2.0;
        let down = ctmc
            .expected_accumulated_reward(&[1.0, 0.0], &[0.0, 1.0], t, 1e-13)
            .unwrap();
        // ∫ P01(s) ds with P01(s) = λ/(λ+μ)(1 − e^{-(λ+μ)s})
        let rate = l + m;
        let expected = l / rate * (t - (1.0 - (-rate * t).exp()) / rate);
        assert!((down - expected).abs() < 1e-7, "{down} vs {expected}");
    }

    #[test]
    fn accumulated_reward_zero_time() {
        let ctmc = two_state(1.0, 1.0);
        let r = ctmc
            .expected_accumulated_reward(&[1.0, 0.0], &[1.0, 1.0], 0.0, 1e-10)
            .unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn reward_of_constant_one_equals_t() {
        let ctmc = two_state(0.7, 1.3);
        let t = 3.21;
        let r = ctmc
            .expected_accumulated_reward(&[0.5, 0.5], &[1.0, 1.0], t, 1e-13)
            .unwrap();
        assert!((r - t).abs() < 1e-8, "{r}");
    }

    #[test]
    fn bad_initial_rejected() {
        let ctmc = two_state(1.0, 1.0);
        assert!(matches!(
            ctmc.transient(&[0.5, 0.4], 1.0, 1e-10),
            Err(CtmcError::BadInitialDistribution)
        ));
        assert!(matches!(
            ctmc.transient(&[1.0], 1.0, 1e-10),
            Err(CtmcError::BadInitialDistribution)
        ));
    }

    #[test]
    fn absorbing_chain_steady_state() {
        let ctmc = Ctmc::from_rates(2, &[(0, 1, 1.0)]).unwrap();
        let pi = ctmc.steady_state(1e-12, 100_000).unwrap();
        assert!((pi[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mtta_of_pure_death_chain() {
        // 2 → 1 → 0 with rates 2 and 1: MTTA = 1/2 + 1 = 1.5.
        let ctmc = Ctmc::from_rates(3, &[(2, 1, 2.0), (1, 0, 1.0)]).unwrap();
        let mut init = vec![0.0, 0.0, 1.0];
        let mtta = ctmc.mean_time_to_absorption(&init, 1e-12, 100_000).unwrap();
        assert!((mtta - 1.5).abs() < 1e-9, "{mtta}");
        // Starting from state 1, only the second stage remains.
        init = vec![0.0, 1.0, 0.0];
        let mtta = ctmc.mean_time_to_absorption(&init, 1e-12, 100_000).unwrap();
        assert!((mtta - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mtta_with_repair_loop() {
        // 0 ⇄ 1 → 2(absorbing): classic MTTF formula.
        // From 0: m0 = 1/λ0 + m1; m1 = 1/(μ+f) + μ/(μ+f)·m0.
        let (l0, mu, f) = (1.0, 3.0, 0.5);
        let ctmc = Ctmc::from_rates(3, &[(0, 1, l0), (1, 0, mu), (1, 2, f)]).unwrap();
        let m1 = |m0: f64| (1.0 + mu * m0) / (mu + f);
        // Solve the 2×2 system exactly.
        // m0 = 1/l0 + m1(m0) ⇒ m0 (1 − mu/(mu+f)) = 1/l0 + 1/(mu+f)
        let m0 = (1.0 / l0 + 1.0 / (mu + f)) / (1.0 - mu / (mu + f));
        let mtta = ctmc
            .mean_time_to_absorption(&[1.0, 0.0, 0.0], 1e-13, 1_000_000)
            .unwrap();
        assert!((mtta - m0).abs() < 1e-7, "{mtta} vs {m0}");
        let _ = m1; // documented derivation
    }

    #[test]
    fn mtta_zero_when_starting_absorbed() {
        let ctmc = Ctmc::from_rates(2, &[(0, 1, 1.0)]).unwrap();
        let mtta = ctmc
            .mean_time_to_absorption(&[0.0, 1.0], 1e-12, 1000)
            .unwrap();
        assert!(mtta.abs() < 1e-9);
    }

    #[test]
    fn absorption_probability_by_time() {
        // 0 → 1 (absorbing) at rate 2: P[absorbed by t] = 1 − e^{−2t}.
        let ctmc = Ctmc::from_rates(2, &[(0, 1, 2.0)]).unwrap();
        for &t in &[0.1, 0.5, 2.0] {
            let p = ctmc.absorption_by(&[1.0, 0.0], t, 1e-12).unwrap();
            let expected = 1.0 - (-2.0f64 * t).exp();
            assert!((p - expected).abs() < 1e-9, "t = {t}");
        }
    }

    #[test]
    fn erlang_absorption_closed_form() {
        // k exponential stages of rate λ in series: absorption time is
        // Erlang(k, λ), so P[absorbed by t] = 1 − e^{−λt} Σ_{i<k} (λt)^i/i!
        // and the mean time to absorption is k/λ.
        let (k, lambda) = (4usize, 2.5f64);
        let rates: Vec<(usize, usize, f64)> = (0..k).map(|i| (i, i + 1, lambda)).collect();
        let ctmc = Ctmc::from_rates(k + 1, &rates).unwrap();
        let mut init = vec![0.0; k + 1];
        init[0] = 1.0;
        for &t in &[0.2, 0.8, 1.5, 4.0] {
            let p = ctmc.absorption_by(&init, t, 1e-13).unwrap();
            let partial: f64 = (0..k)
                .map(|i| (lambda * t).powi(i as i32) / (1..=i).product::<usize>() as f64)
                .sum();
            let closed = 1.0 - (-lambda * t).exp() * partial;
            assert!((p - closed).abs() < 1e-9, "t = {t}: {p} vs {closed}");
        }
        let mtta = ctmc.mean_time_to_absorption(&init, 1e-13, 100_000).unwrap();
        assert!((mtta - k as f64 / lambda).abs() < 1e-9, "{mtta}");
    }

    #[test]
    fn transient_multi_matches_closed_form_and_single_time() {
        // Two-state availability at several times from one uniformization:
        // values must hit the closed form AND be bitwise identical to the
        // per-time transient() results.
        let (l, m) = (1.0, 3.0);
        let ctmc = two_state(l, m);
        let times = [0.0, 0.1, 0.5, 1.0, 5.0];
        let multi = ctmc.transient_multi(&[1.0, 0.0], &times, 1e-13).unwrap();
        assert_eq!(multi.len(), times.len());
        for (&t, dist) in times.iter().zip(&multi) {
            let expected = m / (l + m) + l / (l + m) * (-(l + m) * t).exp();
            assert!((dist[0] - expected).abs() < 1e-9, "t = {t}: {dist:?}");
            let single = ctmc.transient(&[1.0, 0.0], t, 1e-13).unwrap();
            assert_eq!(dist, &single, "t = {t} differs from single-time solve");
        }
    }

    #[test]
    fn transient_multi_all_zero_times() {
        let ctmc = two_state(1.0, 1.0);
        let multi = ctmc
            .transient_multi(&[0.25, 0.75], &[0.0, 0.0], 1e-12)
            .unwrap();
        assert_eq!(multi, vec![vec![0.25, 0.75]; 2]);
    }

    #[test]
    fn transient_long_horizon_approaches_steady_state() {
        let ctmc = two_state(2.0, 5.0);
        let p = ctmc.transient(&[1.0, 0.0], 100.0, 1e-12).unwrap();
        let pi = ctmc.steady_state(1e-13, 100_000).unwrap();
        assert!((p[0] - pi[0]).abs() < 1e-9);
    }

    /// A deterministic pseudo-random chain: `n` states, ~`deg` outgoing
    /// edges per state with LCG-derived targets and rates.
    fn pseudo_random_chain(n: usize, deg: usize, seed: u64) -> Ctmc {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut rates = Vec::new();
        for s in 0..n {
            for _ in 0..deg {
                let t = (next() as usize) % n;
                if t == s {
                    continue;
                }
                let r = 0.25 + (next() % 1000) as f64 / 500.0;
                rates.push((s, t, r));
            }
        }
        Ctmc::from_rates(n, &rates).unwrap()
    }

    #[test]
    fn gather_step_is_bit_identical_to_scatter_oracle() {
        let ctmc = pseudo_random_chain(97, 5, 20030622);
        let lambda = ctmc.uniformization_rate();
        // A few iterates, including sparse early vectors with zero mass.
        let mut x = vec![0.0; 97];
        x[13] = 1.0;
        for step in 0..40 {
            let scatter = ctmc.uniformized_step_scatter(&x, lambda);
            let mut gather = vec![0.0; 97];
            ctmc.uniformized_step_into(&x, lambda, &mut gather);
            for (s, (a, b)) in scatter.iter().zip(&gather).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step {step}, state {s}: {a} vs {b}"
                );
            }
            x = gather;
        }
    }

    #[test]
    fn threaded_solve_is_byte_identical_to_inline() {
        // Big enough to clear PARALLEL_CUTOFF so threads actually spawn.
        let n = 5000;
        let rates: Vec<(usize, usize, f64)> = (0..n - 1)
            .flat_map(|s| {
                [
                    (s, s + 1, 1.0 + (s % 7) as f64 / 3.0),
                    (s + 1, s, 2.0 + (s % 5) as f64 / 4.0),
                ]
            })
            .collect();
        let inline = Ctmc::from_rates(n, &rates).unwrap();
        let threaded = inline.clone().with_threads(8);
        assert!(n >= PARALLEL_CUTOFF);
        let mut init = vec![0.0; n];
        init[0] = 0.25;
        init[n / 2] = 0.75;
        let a = inline.transient_multi(&init, &[0.4, 1.7], 1e-12).unwrap();
        let b = threaded.transient_multi(&init, &[0.4, 1.7], 1e-12).unwrap();
        for (da, db) in a.iter().zip(&b) {
            for (x, y) in da.iter().zip(db) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let ra = inline
            .expected_accumulated_reward(&init, &vec![1.0; n], 0.9, 1e-12)
            .unwrap();
        let rb = threaded
            .expected_accumulated_reward(&init, &vec![1.0; n], 0.9, 1e-12)
            .unwrap();
        assert_eq!(ra.to_bits(), rb.to_bits());
    }
}

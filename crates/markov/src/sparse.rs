//! Compressed sparse row matrices.
//!
//! Just enough linear algebra for the Markov solvers: construction from
//! (row, col, value) triplets with duplicate summing, row iteration,
//! `y = xᵀA` and `y = Ax` products, and transposition.

use std::fmt;

/// Error constructing a sparse matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A triplet referenced a row or column outside the matrix shape.
    IndexOutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
    },
    /// A value was NaN or infinite.
    NonFiniteValue,
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col } => {
                write!(f, "triplet ({row}, {col}) out of bounds")
            }
            SparseError::NonFiniteValue => write!(f, "matrix entries must be finite"),
        }
    }
}

impl std::error::Error for SparseError {}

/// A compressed sparse row (CSR) matrix of `f64`.
///
/// # Example
///
/// ```
/// use itua_markov::sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
/// assert_eq!(m.get(0, 2), 2.0);
/// assert_eq!(m.get(1, 0), 0.0);
/// let y = m.mul_vec(&[1.0, 1.0, 1.0]);
/// assert_eq!(y, vec![3.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from (row, col, value) triplets.
    ///
    /// Duplicate coordinates are summed; explicit zeros are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError`] for out-of-bounds indices or non-finite
    /// values.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, SparseError> {
        for &(r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(SparseError::IndexOutOfBounds { row: r, col: c });
            }
            if !v.is_finite() {
                return Err(SparseError::NonFiniteValue);
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        // Merge duplicate coordinates.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => merged.push((r, c, v)),
            }
        }

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut values: Vec<f64> = Vec::with_capacity(merged.len());
        let mut current_row = 0usize;
        for (r, c, v) in merged {
            if v == 0.0 {
                continue; // drop explicit/cancelled zeros
            }
            while current_row < r {
                current_row += 1;
                row_ptr[current_row] = col_idx.len();
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < rows {
            current_row += 1;
            row_ptr[current_row] = col_idx.len();
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)` (0.0 if not stored).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            if self.col_idx[k] == col {
                return self.values[k];
            }
        }
        0.0
    }

    /// Iterates over `(col, value)` pairs of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows);
        (self.row_ptr[row]..self.row_ptr[row + 1]).map(move |k| (self.col_idx[k], self.values[k]))
    }

    /// Dense `y = A·x` (column vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
        y
    }

    /// Dense `y = xᵀ·A` (row vector product), the natural operation for
    /// probability-vector propagation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                y[self.col_idx[k]] += xr * self.values[k];
            }
        }
        y
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                triplets.push((self.col_idx[k], r, self.values[k]));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
            .expect("transpose of a valid matrix is valid")
    }

    /// Sum of the entries in `row`.
    pub fn row_sum(&self, row: usize) -> f64 {
        self.row(row).map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_get() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (2, 0, -1.0), (1, 1, 4.0)]).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(2, 0), -1.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn cancelling_duplicates_are_pruned() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, -1.0)]).unwrap();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]),
            Err(SparseError::NonFiniteValue)
        ));
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(4, 4, &[(3, 3, 1.0)]).unwrap();
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(3).count(), 1);
        assert_eq!(m.get(3, 3), 1.0);
    }

    #[test]
    fn mul_vec_and_vec_mul() {
        // [1 2]   [1]   [5]
        // [3 4] · [2] = [11]
        let m =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)])
                .unwrap();
        assert_eq!(m.mul_vec(&[1.0, 2.0]), vec![5.0, 11.0]);
        // [1 2]ᵀ-product: xᵀA with x = [1, 2] → [1+6, 2+8] = [7, 10]
        assert_eq!(m.vec_mul(&[1.0, 2.0]), vec![7.0, 10.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, 1.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_sum() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0)]).unwrap();
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.row_sum(1), 0.0);
    }

    #[test]
    fn many_rows_interleaved_duplicates() {
        let mut triplets = vec![];
        for r in 0..10 {
            for c in 0..10 {
                triplets.push((r, c, 1.0));
                triplets.push((r, c, 1.0));
            }
        }
        let m = CsrMatrix::from_triplets(10, 10, &triplets).unwrap();
        assert_eq!(m.nnz(), 100);
        for r in 0..10 {
            assert_eq!(m.row_sum(r), 20.0);
        }
    }
}

//! Truncated Poisson weights for uniformization.
//!
//! Uniformization expresses the transient distribution of a CTMC as a
//! Poisson-weighted mixture of DTMC powers. For large `λt`, computing the
//! weights naively under/overflows, so we compute them in a numerically
//! safe way: start from the (log-domain) mode, recurse outward, and
//! truncate both tails at a requested mass `1 - ε` (the approach of Fox &
//! Glynn, in a simplified but robust form).

/// Poisson weights `P[N = k]` for `k` in `[left, right]`, truncated so the
/// retained mass is at least `1 - epsilon`.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWeights {
    /// First retained index.
    pub left: usize,
    /// Last retained index.
    pub right: usize,
    /// `weights[i]` is `P[N = left + i]`, renormalized to sum to exactly 1.
    pub weights: Vec<f64>,
}

impl PoissonWeights {
    /// Computes truncated weights for mean `lambda_t >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_t` is negative/NaN or `epsilon` not in `(0, 1)`.
    pub fn new(lambda_t: f64, epsilon: f64) -> Self {
        assert!(
            lambda_t >= 0.0 && lambda_t.is_finite(),
            "lambda_t must be finite nonnegative"
        );
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");

        if lambda_t == 0.0 {
            return PoissonWeights {
                left: 0,
                right: 0,
                weights: vec![1.0],
            };
        }

        let mode = lambda_t.floor() as usize;
        // log P[N = mode] via Stirling-free accumulation is fine; use
        // ln k! = lgamma(k+1) through the stable product for moderate k.
        let ln_mode_weight = -lambda_t + mode as f64 * lambda_t.ln() - ln_factorial(mode);

        // Walk outward from the mode, accumulating unnormalized weights
        // relative to the mode weight (=1).
        let mut right_weights = vec![1.0f64];
        let mut k = mode;
        let mut w = 1.0f64;
        // Expand right until the ratio-based tail bound is tiny.
        loop {
            k += 1;
            w *= lambda_t / k as f64;
            if w < 1e-18 && k > mode + 2 {
                break;
            }
            right_weights.push(w);
            if k > mode + 10_000_000 {
                break; // absurd guard; lambda_t this large is rejected upstream
            }
        }
        let mut left_weights = vec![];
        let mut k = mode;
        let mut w = 1.0f64;
        while k > 0 {
            w *= k as f64 / lambda_t;
            if w < 1e-18 {
                break;
            }
            k -= 1;
            left_weights.push(w);
        }
        // Assemble in index order.
        let left = mode - left_weights.len();
        let mut weights: Vec<f64> = left_weights.into_iter().rev().collect();
        weights.extend(right_weights);

        // Scale by the mode weight in a protected way: if the mode weight
        // underflows (huge lambda_t), normalization below fixes the scale
        // anyway, so work with relative weights directly.
        let scale = ln_mode_weight.exp();
        if scale > 0.0 {
            for w in &mut weights {
                *w *= scale;
            }
        }

        // Trim tails to requested mass.
        let total: f64 = weights.iter().sum();
        let target = total * (1.0 - epsilon);
        let mut lo = 0usize;
        let mut hi = weights.len() - 1;
        let mut kept = total;
        while kept - weights[lo].min(weights[hi]) >= target && lo < hi {
            if weights[lo] <= weights[hi] {
                kept -= weights[lo];
                lo += 1;
            } else {
                kept -= weights[hi];
                hi -= 1;
            }
        }
        let mut trimmed: Vec<f64> = weights[lo..=hi].to_vec();
        let norm: f64 = trimmed.iter().sum();
        for w in &mut trimmed {
            *w /= norm;
        }
        PoissonWeights {
            left: left + lo,
            right: left + hi,
            weights: trimmed,
        }
    }
}

/// `ln(k!)` by direct summation (exact enough for the k ranges
/// uniformization visits; switchover to Stirling for large k).
fn ln_factorial(k: usize) -> f64 {
    if k < 256 {
        (1..=k).map(|i| (i as f64).ln()).sum()
    } else {
        // Stirling series with the 1/(12k) correction.
        let kf = k as f64;
        kf * kf.ln() - kf + 0.5 * (2.0 * std::f64::consts::PI * kf).ln() + 1.0 / (12.0 * kf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_pmf(lambda: f64, k: usize) -> f64 {
        (-lambda + k as f64 * lambda.ln() - ln_factorial(k)).exp()
    }

    #[test]
    fn zero_mean_is_point_mass() {
        let w = PoissonWeights::new(0.0, 1e-10);
        assert_eq!(w.left, 0);
        assert_eq!(w.right, 0);
        assert_eq!(w.weights, vec![1.0]);
    }

    #[test]
    fn weights_sum_to_one() {
        for &lt in &[0.1, 1.0, 5.0, 30.0, 500.0, 5000.0] {
            let w = PoissonWeights::new(lt, 1e-12);
            let sum: f64 = w.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "lambda_t = {lt}: sum {sum}");
        }
    }

    #[test]
    fn matches_exact_pmf_small_lambda() {
        let lt = 3.0;
        let w = PoissonWeights::new(lt, 1e-14);
        for (i, &wi) in w.weights.iter().enumerate() {
            let k = w.left + i;
            let exact = exact_pmf(lt, k);
            assert!((wi - exact).abs() < 1e-10, "k = {k}: {wi} vs {exact}");
        }
    }

    #[test]
    fn mode_is_retained_and_maximal() {
        for &lt in &[2.5, 10.0, 100.0] {
            let w = PoissonWeights::new(lt, 1e-10);
            let mode = lt.floor() as usize;
            assert!(w.left <= mode && mode <= w.right);
            let mode_w = w.weights[mode - w.left];
            for &wi in &w.weights {
                assert!(wi <= mode_w * (1.0 + 1e-12));
            }
        }
    }

    #[test]
    fn mean_recovered() {
        let lt = 42.0;
        let w = PoissonWeights::new(lt, 1e-13);
        let mean: f64 = w
            .weights
            .iter()
            .enumerate()
            .map(|(i, &wi)| (w.left + i) as f64 * wi)
            .sum();
        assert!((mean - lt).abs() < 1e-6, "mean {mean}");
    }

    #[test]
    fn truncation_window_shrinks_with_looser_epsilon() {
        let tight = PoissonWeights::new(100.0, 1e-14);
        let loose = PoissonWeights::new(100.0, 1e-3);
        assert!(loose.weights.len() <= tight.weights.len());
    }

    #[test]
    #[should_panic]
    fn negative_lambda_panics() {
        let _ = PoissonWeights::new(-1.0, 1e-6);
    }

    #[test]
    fn ln_factorial_consistent_across_switchover() {
        // The direct sum and Stirling branches must agree near k = 256.
        let direct: f64 = (1..=300usize).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - direct).abs() < 1e-9);
    }
}

//! Numerical Markov-chain solvers for the ITUA reproduction.
//!
//! Möbius solves stochastic activity networks analytically "by converting
//! them into equivalent continuous time Markov chains". This crate is that
//! analytical back end:
//!
//! * [`sparse`] — compressed sparse row matrices with the operations the
//!   solvers need (built from triplets, transposition, mat-vec).
//! * [`ctmc`] — continuous-time Markov chains: transient distribution by
//!   **uniformization** with truncated Poisson weights, expected
//!   time-averaged/accumulated rewards over an interval, and steady state.
//! * [`dtmc`] — discrete-time chains: power iteration and absorption
//!   probabilities.
//! * [`poisson`] — truncated Poisson weight computation used by
//!   uniformization.
//!
//! # Example
//!
//! A two-state repairable system (fail rate 1, repair rate 9) has
//! steady-state availability 0.9:
//!
//! ```
//! use itua_markov::ctmc::Ctmc;
//!
//! let q = vec![
//!     (0, 1, 1.0), // up → down
//!     (1, 0, 9.0), // down → up
//! ];
//! let ctmc = Ctmc::from_rates(2, &q).unwrap();
//! let pi = ctmc.steady_state(1e-12, 100_000).unwrap();
//! assert!((pi[0] - 0.9).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctmc;
pub mod dtmc;
pub mod poisson;
pub mod sparse;

pub use ctmc::Ctmc;
pub use dtmc::Dtmc;
pub use sparse::CsrMatrix;

//! Property-based tests for the Markov solvers.

use itua_markov::ctmc::Ctmc;
use itua_markov::poisson::PoissonWeights;
use itua_markov::sparse::CsrMatrix;
use proptest::prelude::*;

fn arb_triplets(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, -100.0f64..100.0), 0..(n * n))
}

proptest! {
    /// Transposing twice is the identity.
    #[test]
    fn transpose_involution(triplets in arb_triplets(8)) {
        let m = CsrMatrix::from_triplets(8, 8, &triplets).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// `get` agrees with a dense reconstruction from the triplets.
    #[test]
    fn csr_matches_dense(triplets in arb_triplets(6)) {
        let m = CsrMatrix::from_triplets(6, 6, &triplets).unwrap();
        let mut dense = [[0.0f64; 6]; 6];
        for &(r, c, v) in &triplets {
            dense[r][c] += v;
        }
        for (r, row) in dense.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                prop_assert!((m.get(r, c) - v).abs() < 1e-9);
            }
        }
    }

    /// `xᵀA` and `Aᵀx` agree.
    #[test]
    fn vec_mul_matches_transpose(triplets in arb_triplets(6), x in prop::collection::vec(-10.0f64..10.0, 6)) {
        let m = CsrMatrix::from_triplets(6, 6, &triplets).unwrap();
        let a = m.vec_mul(&x);
        let b = m.transpose().mul_vec(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    /// Poisson weights are a probability vector whose mean tracks λt.
    #[test]
    fn poisson_weights_normalized(lambda_t in 0.01f64..2000.0) {
        let w = PoissonWeights::new(lambda_t, 1e-12);
        let sum: f64 = w.weights.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let mean: f64 = w.weights.iter().enumerate()
            .map(|(i, &p)| (w.left + i) as f64 * p)
            .sum();
        prop_assert!((mean - lambda_t).abs() < 1e-3 * (1.0 + lambda_t));
    }

    /// A CTMC transient solution is a probability distribution, and mass
    /// is conserved at every horizon.
    #[test]
    fn transient_is_distribution(
        rates in prop::collection::vec((0usize..5, 0usize..5, 0.01f64..10.0), 1..15),
        t in 0.0f64..20.0,
    ) {
        let rates: Vec<_> = rates.into_iter().filter(|&(f, g, _)| f != g).collect();
        prop_assume!(!rates.is_empty());
        let ctmc = Ctmc::from_rates(5, &rates).unwrap();
        let p = ctmc.transient(&[1.0, 0.0, 0.0, 0.0, 0.0], t, 1e-10).unwrap();
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "mass {sum}");
        for &pi in &p {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&pi));
        }
    }

    /// For random birth–death chains, every multi-time transient
    /// distribution sums to 1 with nonnegative entries, and each one is
    /// bitwise identical to the corresponding single-time solve.
    #[test]
    fn birth_death_transient_multi_is_distribution(
        births in prop::collection::vec(0.01f64..10.0, 5),
        deaths in prop::collection::vec(0.01f64..10.0, 5),
        times in prop::collection::vec(0.0f64..15.0, 1..5),
    ) {
        let mut rates = Vec::new();
        for (i, &b) in births.iter().enumerate() {
            rates.push((i, i + 1, b));
        }
        for (i, &d) in deaths.iter().enumerate() {
            rates.push((i + 1, i, d));
        }
        let ctmc = Ctmc::from_rates(6, &rates).unwrap();
        let init = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let multi = ctmc.transient_multi(&init, &times, 1e-10).unwrap();
        prop_assert_eq!(multi.len(), times.len());
        for (&t, dist) in times.iter().zip(&multi) {
            let sum: f64 = dist.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "t = {}: mass {}", t, sum);
            for &pi in dist {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&pi));
            }
            let single = ctmc.transient(&init, t, 1e-10).unwrap();
            prop_assert_eq!(dist, &single);
        }
    }

    /// Accumulated reward of a constant unit reward equals the horizon.
    #[test]
    fn unit_reward_accumulates_time(
        rates in prop::collection::vec((0usize..4, 0usize..4, 0.01f64..5.0), 1..10),
        t in 0.0f64..10.0,
    ) {
        let rates: Vec<_> = rates.into_iter().filter(|&(f, g, _)| f != g).collect();
        prop_assume!(!rates.is_empty());
        let ctmc = Ctmc::from_rates(4, &rates).unwrap();
        let r = ctmc
            .expected_accumulated_reward(&[1.0, 0.0, 0.0, 0.0], &[1.0; 4], t, 1e-10)
            .unwrap();
        prop_assert!((r - t).abs() < 1e-5 * (1.0 + t), "{r} vs {t}");
    }
}

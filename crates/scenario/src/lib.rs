//! Declarative experiment layer for the ITUA reproduction.
//!
//! Every study used to be a hand-rolled binary, so scenario diversity —
//! the paper's whole point being parametric validation of the ITUA
//! design space — was gated on recompiling. This crate makes
//! *configurations* first-class inputs to one evaluation engine:
//!
//! * [`Scenario`] — the trait every runnable experiment implements:
//!   name, description, sweep points (including the analytic-backend
//!   micro-variant substitution that used to be hard-coded in each
//!   figure `main`), measures, renderer, and the identity parts folded
//!   into result-store fingerprints.
//! * [`registry`] — the shipped studies (Figures 3–5, the sensitivity
//!   study, and the `all-figures` composite) as built-in scenarios,
//!   each a thin declarative wrapper over an
//!   [`itua_studies::study::Study`] descriptor. Built-ins contribute no
//!   extra fingerprint parts, so their stores stay byte-identical to the
//!   legacy figure binaries'.
//! * [`file`] — a dependency-free `key = value` parser for user-authored
//!   `.scn` scenario files (topology counts, rates, management scheme,
//!   sweep axis, replications/horizon, split levels) that compose into
//!   [`SweepPoint`]s without recompiling. A file scenario's normalized
//!   content hash enters the store fingerprint, so editing the file
//!   invalidates checkpointed results instead of silently resuming them.
//!
//! The `itua` binary (in `itua-bench`) fronts this crate:
//! `itua list`, `itua run <scenario|file.scn>`, `itua check <scenario>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assert;
pub mod file;
pub mod keys;
pub mod registry;

use itua_rare::SplitSpec;
use itua_runner::backend::BackendKind;
use itua_studies::sweep::{
    run_sweep_stored, FigureResult, RunOpts, Series, SweepConfig, SweepPoint,
};
use std::io;

/// A runnable experiment: a named sweep with measures and a renderer.
///
/// The provided [`Scenario::run`] covers the common single-sweep shape
/// (one stored sweep, one rendered figure); composite scenarios such as
/// `all-figures` override it.
pub trait Scenario {
    /// Unique scenario name (`itua run <name>`).
    fn name(&self) -> &str;

    /// One-line description shown by `itua list`.
    fn description(&self) -> &str;

    /// Sweep/store identifier; defaults to the scenario name. The
    /// result store file is `<sweep id>.json` with the backend/split
    /// suffixes applied by the sweep layer.
    fn sweep_id(&self) -> String {
        self.name().to_owned()
    }

    /// The sweep points the scenario runs on `backend`. Implementations
    /// with an exact-solvable micro variant substitute it for
    /// [`BackendKind::Analytic`] (Figure 3); everything else ignores the
    /// backend.
    fn points(&self, backend: BackendKind) -> Vec<SweepPoint>;

    /// Measure keys extracted from the sweep (possibly `@t`-suffixed).
    fn measures(&self) -> Vec<String>;

    /// Renders extracted series into the scenario's figure.
    fn render(&self, series: &[Series]) -> FigureResult;

    /// Marking assertions the scenario claims hold in *every* reachable
    /// marking of its model, proved by `itua check --exhaustive`.
    /// Built-ins claim nothing beyond the analyzer's own conservation
    /// families; `.scn` files contribute their `assert =` lines.
    fn asserts(&self) -> Vec<crate::assert::MarkingAssert> {
        Vec::new()
    }

    /// Identity parts folded into the result-store fingerprint after
    /// the sweep-configuration parts. Built-ins return nothing (their
    /// identity is fully carried by their points), keeping legacy
    /// stores byte-identical; file scenarios return their normalized
    /// content hash so resume stays sound across scenario edits.
    fn fingerprint_parts(&self) -> Vec<String> {
        Vec::new()
    }

    /// Folds the scenario's *pinned* execution settings into the
    /// CLI-derived configuration. Built-ins pin nothing; a `.scn` file
    /// that specifies `reps` / `seed` / `confidence` / `split-levels`
    /// is authoritative for those settings (the file declares the
    /// experiment; flags fill what it leaves open).
    fn configure(&self, cfg: &mut SweepConfig, split: &mut Option<SplitSpec>) {
        let _ = (cfg, split);
    }

    /// Runs the scenario: one stored sweep under [`Scenario::sweep_id`]
    /// with the scenario's [`Scenario::fingerprint_parts`] appended to
    /// the store fingerprint, rendered to one figure.
    ///
    /// # Errors
    ///
    /// Propagates backend failures and result-store write errors.
    fn run(&self, cfg: &SweepConfig, opts: &RunOpts<'_>) -> io::Result<Vec<FigureResult>> {
        let points = self.points(opts.backend);
        let measures = self.measures();
        let refs: Vec<&str> = measures.iter().map(String::as_str).collect();
        let opts = with_extra(opts, self.fingerprint_parts());
        let all = run_sweep_stored(&self.sweep_id(), &points, cfg, &refs, &opts)?;
        Ok(vec![self.render(&all)])
    }
}

/// Rebuilds `opts` with `extra` appended to its fingerprint parts
/// (everything else carried over; the progress observer is shared).
fn with_extra<'a>(opts: &RunOpts<'a>, extra: Vec<String>) -> RunOpts<'a> {
    let mut fingerprint_extra = opts.fingerprint_extra.clone();
    fingerprint_extra.extend(extra);
    RunOpts {
        backend: opts.backend,
        backend_opts: opts.backend_opts,
        runner: opts.runner,
        progress: opts.progress,
        results_dir: opts.results_dir.clone(),
        check: opts.check,
        split: opts.split.clone(),
        fingerprint_extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_extra_appends_without_mutating_the_original() {
        let base = RunOpts {
            fingerprint_extra: vec!["a=1".into()],
            ..RunOpts::default()
        };
        let combined = with_extra(&base, vec!["scn=abc".into()]);
        assert_eq!(combined.fingerprint_extra, vec!["a=1", "scn=abc"]);
        assert_eq!(base.fingerprint_extra, vec!["a=1"]);
        assert_eq!(combined.backend, base.backend);
    }
}

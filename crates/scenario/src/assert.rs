//! Marking assertions: safety claims a `.scn` file makes about every
//! reachable marking of its model.
//!
//! An assertion line has the shape
//!
//! ```text
//! assert = <agg>(<place glob>) <op> <bound>
//! ```
//!
//! where `<agg>` is `sum`, `max`, or `min` over the token counts of the
//! places whose full names match the glob (`*` matches any run of
//! characters), `<op>` is one of `<=`, `>=`, `==`, `!=`, `<`, `>`, and
//! `<bound>` is an integer. Example:
//!
//! ```text
//! assert = sum(itua/apps[0]/*/has_started) <= 2
//! assert = max(*/host_corrupt) <= 1
//! ```
//!
//! This module is deliberately model-agnostic: it parses, matches names,
//! and evaluates token vectors. Resolving globs against a concrete SAN
//! and sweeping the reachable space is the exhaustive checker's job (the
//! `itua check --exhaustive` path), keeping this crate dependency-free.

use std::fmt;

/// Aggregation over the matched places' token counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Sum of all matched counts.
    Sum,
    /// Maximum matched count.
    Max,
    /// Minimum matched count.
    Min,
}

impl Agg {
    fn name(self) -> &'static str {
        match self {
            Agg::Sum => "sum",
            Agg::Max => "max",
            Agg::Min => "min",
        }
    }
}

/// Comparison operator against the bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl CmpOp {
    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
        }
    }

    fn holds(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Le => lhs <= rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Gt => lhs > rhs,
        }
    }
}

/// One parsed `assert =` line: an aggregate over glob-matched places
/// compared against an integer bound, claimed for *every* reachable
/// marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkingAssert {
    agg: Agg,
    pattern: String,
    op: CmpOp,
    bound: i64,
}

impl MarkingAssert {
    /// Parses `<agg>(<glob>) <op> <int>`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed part.
    pub fn parse(text: &str) -> Result<MarkingAssert, String> {
        let text = text.trim();
        let open = text
            .find('(')
            .ok_or_else(|| format!("assert '{text}': expected '<agg>(<place glob>) <op> <n>'"))?;
        let agg = match &text[..open] {
            "sum" => Agg::Sum,
            "max" => Agg::Max,
            "min" => Agg::Min,
            other => {
                return Err(format!(
                    "assert: unknown aggregate '{other}' (sum, max, min)"
                ))
            }
        };
        let rest = &text[open + 1..];
        let close = rest
            .find(')')
            .ok_or_else(|| format!("assert '{text}': missing ')'"))?;
        let pattern = rest[..close].trim();
        if pattern.is_empty() {
            return Err("assert: empty place glob".to_owned());
        }
        let tail = rest[close + 1..].trim();
        // Two-character operators first so '<' does not shadow '<='.
        let ops = [
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("==", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ];
        let (op, bound_text) = ops
            .iter()
            .find_map(|(sym, op)| tail.strip_prefix(sym).map(|rest| (*op, rest.trim())))
            .ok_or_else(|| {
                format!("assert '{text}': expected an operator (<=, >=, ==, !=, <, >)")
            })?;
        let bound: i64 = bound_text
            .parse()
            .map_err(|_| format!("assert: '{bound_text}' is not an integer bound"))?;
        Ok(MarkingAssert {
            agg,
            pattern: pattern.to_owned(),
            op,
            bound,
        })
    }

    /// Whether `name` matches this assertion's place glob.
    pub fn matches(&self, name: &str) -> bool {
        glob_match(&self.pattern, name)
    }

    /// Evaluates the assertion over the matched places' token counts.
    /// `values` must be exactly the counts of the places selected by
    /// [`MarkingAssert::matches`], in any order.
    ///
    /// An empty selection makes `sum` evaluate to 0 while `max`/`min`
    /// fail — but callers should reject empty selections up front (a
    /// glob matching nothing is almost certainly a typo).
    pub fn holds(&self, values: &[i32]) -> bool {
        let lhs = match self.agg {
            Agg::Sum => values.iter().map(|&v| i64::from(v)).sum::<i64>(),
            Agg::Max => match values.iter().max() {
                Some(&v) => i64::from(v),
                None => return false,
            },
            Agg::Min => match values.iter().min() {
                Some(&v) => i64::from(v),
                None => return false,
            },
        };
        self.op.holds(lhs, self.bound)
    }

    /// The place glob, for resolution against a concrete model.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }
}

impl fmt::Display for MarkingAssert {
    /// The canonical form; reparsing it yields an equal assertion.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}) {} {}",
            self.agg.name(),
            self.pattern,
            self.op.symbol(),
            self.bound
        )
    }
}

/// Glob match where `*` matches any (possibly empty) run of characters;
/// everything else is literal. Iterative backtracking over bytes (place
/// names are ASCII).
fn glob_match(pattern: &str, name: &str) -> bool {
    let (p, n) = (pattern.as_bytes(), name.as_bytes());
    let (mut pi, mut ni) = (0, 0);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((sp, sn)) = star {
            // Backtrack: let the last '*' swallow one more character.
            pi = sp + 1;
            ni = sn + 1;
            star = Some((sp, sn + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips_canonical_form() {
        for text in [
            "sum(itua/apps[0]/*/has_started) <= 2",
            "max(*/host_corrupt) <= 1",
            "min(itua/mgrs_active_sys) >= 0",
            "sum(*) != -1",
            "sum(a) < 7",
            "sum(a) > 0",
            "sum(a) == 3",
        ] {
            let a = MarkingAssert::parse(text).unwrap();
            assert_eq!(a.to_string(), text);
            assert_eq!(MarkingAssert::parse(&a.to_string()).unwrap(), a);
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, needle) in [
            ("sum has_started <= 2", "expected"),
            ("avg(x) <= 2", "unknown aggregate"),
            ("sum(x <= 2", "missing ')'"),
            ("sum() <= 2", "empty place glob"),
            ("sum(x) ~ 2", "operator"),
            ("sum(x) <= two", "not an integer"),
        ] {
            let err = MarkingAssert::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn glob_semantics() {
        let a = MarkingAssert::parse("sum(itua/apps[*]/app/replicas[*]/*) <= 9").unwrap();
        assert!(a.matches("itua/apps[0]/app/replicas[3]/replica/has_started"));
        assert!(!a.matches("itua/domains[0]/hosts[0]/host/host_active"));
        let exact = MarkingAssert::parse("sum(itua/mgrs_active_sys) >= 1").unwrap();
        assert!(exact.matches("itua/mgrs_active_sys"));
        assert!(!exact.matches("itua/mgrs_active_sys2"));
        let suffix = MarkingAssert::parse("max(*/host_corrupt) <= 1").unwrap();
        assert!(suffix.matches("itua/domains[1]/hosts[0]/host/host_corrupt"));
        assert!(!suffix.matches("itua/domains[1]/hosts[0]/host/host_corrupt_detected"));
    }

    #[test]
    fn evaluation_per_aggregate_and_operator() {
        let sum = MarkingAssert::parse("sum(x) <= 5").unwrap();
        assert!(sum.holds(&[1, 2, 2]));
        assert!(!sum.holds(&[3, 3]));
        assert!(sum.holds(&[])); // empty sum is 0

        let max = MarkingAssert::parse("max(x) < 2").unwrap();
        assert!(max.holds(&[0, 1, 1]));
        assert!(!max.holds(&[0, 2]));
        assert!(!max.holds(&[])); // max over nothing never holds

        let min = MarkingAssert::parse("min(x) >= 0").unwrap();
        assert!(min.holds(&[0, 3]));
        assert!(!min.holds(&[-1, 3]));

        let ne = MarkingAssert::parse("sum(x) != 2").unwrap();
        assert!(ne.holds(&[1]));
        assert!(!ne.holds(&[1, 1]));
    }
}

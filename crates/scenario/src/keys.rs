//! The scenario-file parameter vocabulary: kebab-case keys mapped onto
//! [`Params`] fields.
//!
//! One table drives everything — base-parameter assignment, sweep-axis
//! resolution, and the error message listing valid keys — so a key
//! cannot be settable but not sweepable by accident. Layout counts
//! (`domains`, `apps`, …) validate integrality here; everything else is
//! range-checked later by [`Params::validate`] over the composed points.

use itua_core::params::{ManagementScheme, Params};

/// Setter signature: applies one numeric value to one field.
type Setter = fn(&mut Params, f64) -> Result<(), String>;

fn int_field(v: f64, what: &str) -> Result<usize, String> {
    if v.fract() != 0.0 || !(1.0..=1e9).contains(&v) {
        return Err(format!("{what} must be a positive integer, got {v}"));
    }
    Ok(v as usize)
}

macro_rules! rate_setter {
    ($field:ident) => {
        |p: &mut Params, v: f64| {
            p.$field = v;
            Ok(())
        }
    };
}

/// Every numeric parameter key a scenario file may set or sweep.
pub const NUMERIC_KEYS: &[(&str, Setter)] = &[
    ("domains", |p, v| {
        p.num_domains = int_field(v, "domains")?;
        Ok(())
    }),
    ("hosts-per-domain", |p, v| {
        p.hosts_per_domain = int_field(v, "hosts-per-domain")?;
        Ok(())
    }),
    ("apps", |p, v| {
        p.num_apps = int_field(v, "apps")?;
        Ok(())
    }),
    ("reps-per-app", |p, v| {
        p.reps_per_app = int_field(v, "reps-per-app")?;
        Ok(())
    }),
    ("base-attack-rate", rate_setter!(base_attack_rate)),
    ("attack-weight-host", rate_setter!(attack_weight_host)),
    ("attack-weight-replica", rate_setter!(attack_weight_replica)),
    ("attack-weight-manager", rate_setter!(attack_weight_manager)),
    ("false-alarm-rate", rate_setter!(false_alarm_rate)),
    ("effective-rate-factor", rate_setter!(effective_rate_factor)),
    ("detect-replica", rate_setter!(detect_replica)),
    ("detect-manager", rate_setter!(detect_manager)),
    ("ids-rate", rate_setter!(ids_rate)),
    ("misbehave-rate", rate_setter!(misbehave_rate)),
    ("spread-rate-domain", rate_setter!(spread_rate_domain)),
    ("spread-rate-system", rate_setter!(spread_rate_system)),
    ("spread-effect-domain", rate_setter!(spread_effect_domain)),
    ("spread-effect-system", rate_setter!(spread_effect_system)),
    (
        "host-corruption-multiplier",
        rate_setter!(host_corruption_multiplier),
    ),
];

/// Applies `key = value` to `p`. `Err` carries a message naming the key
/// or, for an unknown key, the full vocabulary.
pub fn set_numeric(p: &mut Params, key: &str, value: f64) -> Result<(), String> {
    match NUMERIC_KEYS.iter().find(|(k, _)| *k == key) {
        Some((_, set)) => set(p, value),
        None => Err(format!(
            "unknown parameter key '{key}' (valid keys: {})",
            key_list()
        )),
    }
}

/// Whether `key` names a sweepable numeric parameter.
pub fn is_numeric_key(key: &str) -> bool {
    NUMERIC_KEYS.iter().any(|(k, _)| *k == key)
}

/// Comma-separated vocabulary, for error messages.
pub fn key_list() -> String {
    NUMERIC_KEYS
        .iter()
        .map(|(k, _)| *k)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parses a management-scheme value (`domain-exclusion` /
/// `host-exclusion`).
pub fn parse_scheme(value: &str) -> Result<ManagementScheme, String> {
    match value {
        "domain-exclusion" => Ok(ManagementScheme::DomainExclusion),
        "host-exclusion" => Ok(ManagementScheme::HostExclusion),
        other => Err(format!(
            "unknown scheme '{other}' (expected 'domain-exclusion' or 'host-exclusion')"
        )),
    }
}

/// Renders a scheme back to its scenario-file value.
pub fn scheme_value(scheme: ManagementScheme) -> &'static str {
    match scheme {
        ManagementScheme::DomainExclusion => "domain-exclusion",
        ManagementScheme::HostExclusion => "host-exclusion",
    }
}

/// Human label for a scheme, used as the series name of per-scheme
/// sweeps (matches the labels of the shipped Figure 5 study).
pub fn scheme_label(scheme: ManagementScheme) -> &'static str {
    match scheme {
        ManagementScheme::DomainExclusion => "Domain exclusion",
        ManagementScheme::HostExclusion => "Host exclusion",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_sets_its_field() {
        let mut p = Params::default();
        set_numeric(&mut p, "domains", 6.0).unwrap();
        set_numeric(&mut p, "hosts-per-domain", 2.0).unwrap();
        set_numeric(&mut p, "apps", 3.0).unwrap();
        set_numeric(&mut p, "reps-per-app", 5.0).unwrap();
        set_numeric(&mut p, "spread-rate-domain", 4.5).unwrap();
        set_numeric(&mut p, "host-corruption-multiplier", 5.0).unwrap();
        assert_eq!(p.num_domains, 6);
        assert_eq!(p.hosts_per_domain, 2);
        assert_eq!(p.num_apps, 3);
        assert_eq!(p.reps_per_app, 5);
        assert_eq!(p.spread_rate_domain, 4.5);
        assert_eq!(p.host_corruption_multiplier, 5.0);
        p.validate().unwrap();
    }

    #[test]
    fn layout_keys_reject_non_integers() {
        let mut p = Params::default();
        assert!(set_numeric(&mut p, "domains", 2.5).is_err());
        assert!(set_numeric(&mut p, "apps", 0.0).is_err());
        assert!(set_numeric(&mut p, "reps-per-app", -1.0).is_err());
    }

    #[test]
    fn unknown_key_lists_the_vocabulary() {
        let mut p = Params::default();
        let err = set_numeric(&mut p, "attack-rate", 1.0).unwrap_err();
        assert!(err.contains("unknown parameter key"));
        assert!(err.contains("base-attack-rate"));
        assert!(!is_numeric_key("attack-rate"));
        assert!(is_numeric_key("ids-rate"));
    }

    #[test]
    fn scheme_round_trips() {
        for scheme in [
            ManagementScheme::DomainExclusion,
            ManagementScheme::HostExclusion,
        ] {
            assert_eq!(parse_scheme(scheme_value(scheme)).unwrap(), scheme);
        }
        assert!(parse_scheme("none").is_err());
    }
}

//! The `.scn` scenario-file format: user-authored experiments as plain
//! `key = value` text, no recompile, no external parser dependency.
//!
//! # Format
//!
//! One `key = value` assignment per line; `#` starts a comment (to end
//! of line); blank lines are ignored; for repeated scalar keys the last
//! assignment wins.
//!
//! Structural keys:
//!
//! * `name`, `description` — identity shown by `itua list`/`run`.
//! * `scheme = domain-exclusion | host-exclusion` — base management
//!   scheme (also pins the matching placement constraint).
//! * `schemes = domain-exclusion, host-exclusion` — run the sweep once
//!   per scheme, one series each (the Figure 5 shape).
//! * any key from [`crate::keys::NUMERIC_KEYS`] — pins a base model
//!   parameter (e.g. `domains = 10`, `spread-rate-domain = 4`).
//! * `sweep = <numeric key>` — the x-axis parameter.
//! * `values = v1, v2, ...` — the x-axis values.
//! * `horizon = H` — simulation horizon in hours (default 5).
//! * `measures = m1, m2, ...` — measure keys from
//!   [`itua_core::measures::names`], optionally `@t`-suffixed (e.g.
//!   `frac_domains_excluded@5`).
//! * `sample-times = t1, t2, ...` — extra instant-of-time sample points
//!   (the `@t` suffixes in `measures` are added automatically).
//! * `assert = <agg>(<place glob>) <op> <n>` — a safety claim over every
//!   reachable marking (see [`crate::assert`]); may repeat, one claim
//!   per line, proved by `itua check --exhaustive`.
//!
//! Pinned execution keys (optional; when present the file is
//! authoritative and the corresponding CLI flag is ignored):
//! `reps`, `seed`, `confidence`, `split-levels`.
//!
//! # Identity
//!
//! A parsed scenario exposes a content hash over its *canonical* form
//! (fixed key order, comments stripped, merged sample times) via
//! [`FileScenario::content_hash`]. The hash enters the result-store
//! fingerprint as `scn=<hash>`, so editing a scenario file invalidates
//! checkpointed points instead of silently resuming them, while
//! reformatting (comments, key order, whitespace) does not.

use crate::assert::MarkingAssert;
use crate::keys;
use crate::Scenario;
use itua_core::measures::names;
use itua_core::params::{ManagementScheme, Params};
use itua_rare::SplitSpec;
use itua_runner::backend::BackendKind;
use itua_runner::fingerprint_iter;
use itua_studies::sweep::{FigureResult, Panel, Series, SweepConfig, SweepPoint};
use std::fmt;

/// All measure keys a scenario file may request (before any `@t`
/// suffix).
pub const MEASURE_NAMES: &[&str] = &[
    names::UNAVAILABILITY,
    names::UNRELIABILITY,
    names::FRAC_CORRUPT_AT_EXCLUSION,
    names::FRAC_DOMAINS_EXCLUDED,
    names::REPLICAS_RUNNING,
    names::LOAD_PER_HOST,
    names::TIME_TO_FIRST_BYZANTINE,
    names::TIME_TO_FIRST_IMPROPER,
];

/// A scenario-file error, carrying the 1-based source line when the
/// problem is attributable to one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScnError {
    /// 1-based line number, when known.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl ScnError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ScnError {
            line: Some(line),
            message: message.into(),
        }
    }

    fn general(message: impl Into<String>) -> Self {
        ScnError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ScnError {}

/// A parsed, validated `.scn` scenario.
///
/// Construction goes through [`FileScenario::parse`]; every instance is
/// known-runnable (sweep axis resolves, measures exist, every composed
/// point passes [`Params::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FileScenario {
    name: String,
    description: String,
    /// Numeric base-parameter assignments, sorted by key (last
    /// assignment per key wins).
    base_entries: Vec<(String, f64)>,
    /// Schemes to run, one series each.
    schemes: Vec<ManagementScheme>,
    sweep_key: String,
    values: Vec<f64>,
    horizon: f64,
    /// Merged instant-of-time sample points (explicit `sample-times`
    /// plus `@t` suffixes from `measures`), sorted and deduplicated.
    sample_times: Vec<f64>,
    measures: Vec<String>,
    /// Safety claims over every reachable marking, in file order
    /// (repeated `assert` lines append rather than overwrite).
    asserts: Vec<MarkingAssert>,
    reps: Option<u32>,
    seed: Option<u64>,
    confidence: Option<f64>,
    split: Option<SplitSpec>,
}

fn parse_f64(line: usize, key: &str, value: &str) -> Result<f64, ScnError> {
    let v: f64 = value
        .parse()
        .map_err(|_| ScnError::at(line, format!("'{value}' is not a number (key '{key}')")))?;
    if !v.is_finite() {
        return Err(ScnError::at(line, format!("'{key}' must be finite")));
    }
    Ok(v)
}

fn parse_list(line: usize, key: &str, value: &str) -> Result<Vec<f64>, ScnError> {
    let items: Result<Vec<f64>, _> = value
        .split(',')
        .map(|v| parse_f64(line, key, v.trim()))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(ScnError::at(line, format!("'{key}' must not be empty")));
    }
    Ok(items)
}

fn sort_dedup(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
    v.dedup();
    v
}

/// Splits a measure key into its base name and optional `@t` suffix.
fn split_measure(m: &str) -> (&str, Option<&str>) {
    match m.split_once('@') {
        Some((base, t)) => (base, Some(t)),
        None => (m, None),
    }
}

impl FileScenario {
    /// Parses scenario text. `fallback_name` (typically the file stem)
    /// names the scenario when the text has no `name` key.
    ///
    /// # Errors
    ///
    /// Line-numbered [`ScnError`]s for unknown keys, malformed values,
    /// unknown measures, and a missing sweep axis; a general error when
    /// a composed point fails [`Params::validate`].
    pub fn parse(text: &str, fallback_name: &str) -> Result<FileScenario, ScnError> {
        let mut name = fallback_name.to_owned();
        let mut description = String::from("user-authored scenario");
        let mut base_entries: Vec<(String, f64)> = Vec::new();
        let mut schemes: Option<Vec<ManagementScheme>> = None;
        let mut sweep_key: Option<String> = None;
        let mut values: Option<Vec<f64>> = None;
        let mut horizon = 5.0;
        let mut sample_times: Vec<f64> = Vec::new();
        let mut measures: Option<Vec<String>> = None;
        let mut asserts: Vec<MarkingAssert> = Vec::new();
        let mut reps = None;
        let mut seed = None;
        let mut confidence = None;
        let mut split = None;

        for (idx, raw) in text.lines().enumerate() {
            let n = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| ScnError::at(n, format!("expected 'key = value', got '{line}'")))?;
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(ScnError::at(n, format!("'{key}' has an empty value")));
            }
            match key {
                "name" => name = value.to_owned(),
                "description" => description = value.to_owned(),
                "scheme" => {
                    let s = keys::parse_scheme(value).map_err(|e| ScnError::at(n, e))?;
                    schemes = Some(vec![s]);
                }
                "schemes" => {
                    let list: Result<Vec<_>, _> = value
                        .split(',')
                        .map(|v| keys::parse_scheme(v.trim()).map_err(|e| ScnError::at(n, e)))
                        .collect();
                    let list = list?;
                    let mut uniq = list.clone();
                    uniq.dedup();
                    if uniq.len() != list.len() || list.is_empty() {
                        return Err(ScnError::at(n, "'schemes' must be distinct and non-empty"));
                    }
                    schemes = Some(list);
                }
                "sweep" => {
                    if !keys::is_numeric_key(value) {
                        return Err(ScnError::at(
                            n,
                            format!(
                                "'{value}' is not a sweepable key (valid keys: {})",
                                keys::key_list()
                            ),
                        ));
                    }
                    sweep_key = Some(value.to_owned());
                }
                "values" => values = Some(parse_list(n, key, value)?),
                "horizon" => {
                    horizon = parse_f64(n, key, value)?;
                    if horizon <= 0.0 {
                        return Err(ScnError::at(n, "'horizon' must be positive"));
                    }
                }
                "sample-times" => {
                    let ts = parse_list(n, key, value)?;
                    if ts.iter().any(|t| *t <= 0.0) {
                        return Err(ScnError::at(n, "'sample-times' must be positive"));
                    }
                    sample_times = ts;
                }
                "measures" => {
                    let list: Vec<String> = value
                        .split(',')
                        .map(|m| m.trim().to_owned())
                        .filter(|m| !m.is_empty())
                        .collect();
                    if list.is_empty() {
                        return Err(ScnError::at(n, "'measures' must not be empty"));
                    }
                    for m in &list {
                        let (base, at) = split_measure(m);
                        if !MEASURE_NAMES.contains(&base) {
                            return Err(ScnError::at(
                                n,
                                format!(
                                    "unknown measure '{base}' (valid measures: {})",
                                    MEASURE_NAMES.join(", ")
                                ),
                            ));
                        }
                        if let Some(t) = at {
                            let t = parse_f64(n, "measures", t)?;
                            if t <= 0.0 {
                                return Err(ScnError::at(n, "'@t' sample time must be positive"));
                            }
                        }
                    }
                    measures = Some(list);
                }
                "assert" => {
                    asserts.push(MarkingAssert::parse(value).map_err(|e| ScnError::at(n, e))?);
                }
                "reps" => {
                    reps = Some(value.parse::<u32>().map_err(|_| {
                        ScnError::at(n, format!("'{value}' is not a replication count"))
                    })?);
                }
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| ScnError::at(n, format!("'{value}' is not a seed")))?,
                    );
                }
                "confidence" => {
                    let c = parse_f64(n, key, value)?;
                    if !(0.0..1.0).contains(&c) || c == 0.0 {
                        return Err(ScnError::at(n, "'confidence' must be in (0, 1)"));
                    }
                    confidence = Some(c);
                }
                "split-levels" => {
                    split = Some(
                        value
                            .parse::<SplitSpec>()
                            .map_err(|e| ScnError::at(n, e.to_string()))?,
                    );
                }
                _ if keys::is_numeric_key(key) => {
                    let v = parse_f64(n, key, value)?;
                    // Eagerly check integrality etc. on a scratch copy so
                    // the error carries this line's number.
                    let mut probe = Params::default();
                    keys::set_numeric(&mut probe, key, v).map_err(|e| ScnError::at(n, e))?;
                    base_entries.retain(|(k, _)| k != key);
                    base_entries.push((key.to_owned(), v));
                }
                _ => {
                    return Err(ScnError::at(
                        n,
                        format!(
                            "unknown key '{key}' (structural keys: name, description, scheme, \
                             schemes, sweep, values, horizon, sample-times, measures, assert, \
                             reps, seed, confidence, split-levels; parameter keys: {})",
                            keys::key_list()
                        ),
                    ));
                }
            }
        }

        let sweep_key = sweep_key.ok_or_else(|| ScnError::general("missing 'sweep' key"))?;
        let values = values.ok_or_else(|| ScnError::general("missing 'values' key"))?;
        let measures = measures.ok_or_else(|| ScnError::general("missing 'measures' key"))?;
        base_entries.sort_by(|a, b| a.0.cmp(&b.0));

        let mut at_times: Vec<f64> = measures
            .iter()
            .filter_map(|m| split_measure(m).1)
            .map(|t| t.parse::<f64>().expect("validated above"))
            .collect();
        at_times.extend(sample_times);
        let sample_times = sort_dedup(at_times);
        if let Some(t) = sample_times.last() {
            if *t > horizon {
                return Err(ScnError::general(format!(
                    "sample time {t} is beyond the horizon {horizon}"
                )));
            }
        }

        let scenario = FileScenario {
            name,
            description,
            base_entries,
            schemes: schemes.unwrap_or_else(|| vec![Params::default().scheme]),
            sweep_key,
            values,
            horizon,
            sample_times,
            measures,
            asserts,
            reps,
            seed,
            confidence,
            split,
        };

        // Compose and validate every point now, so `itua check` (and
        // plain `run`) reject a bad file before any simulation.
        for point in scenario.compose()? {
            point
                .params
                .validate()
                .map_err(|e| ScnError::general(format!("invalid point (x = {}): {e}", point.x)))?;
        }
        Ok(scenario)
    }

    /// The composed sweep points: `schemes × values`, each value applied
    /// to the base parameters via the sweep key.
    fn compose(&self) -> Result<Vec<SweepPoint>, ScnError> {
        let mut base = Params::default();
        for (key, v) in &self.base_entries {
            keys::set_numeric(&mut base, key, *v).map_err(ScnError::general)?;
        }
        let mut points = Vec::new();
        for &scheme in &self.schemes {
            let with_scheme = base.clone().with_scheme(scheme);
            for &x in &self.values {
                let mut params = with_scheme.clone();
                keys::set_numeric(&mut params, &self.sweep_key, x)
                    .map_err(|e| ScnError::general(format!("sweep value {x}: {e}")))?;
                points.push(SweepPoint {
                    x,
                    series: keys::scheme_label(scheme).to_owned(),
                    params,
                    horizon: self.horizon,
                    sample_times: self.sample_times.clone(),
                });
            }
        }
        Ok(points)
    }

    /// The canonical serialized lines: fixed key order, normalized
    /// values, no comments. [`fmt::Display`] joins these and
    /// [`FileScenario::content_hash`] hashes them, so two files that
    /// differ only in formatting share identity.
    fn canonical_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!("name = {}", self.name),
            format!("description = {}", self.description),
        ];
        let scheme_values: Vec<&str> = self
            .schemes
            .iter()
            .map(|&s| keys::scheme_value(s))
            .collect();
        if scheme_values.len() > 1 {
            lines.push(format!("schemes = {}", scheme_values.join(", ")));
        } else {
            lines.push(format!("scheme = {}", scheme_values[0]));
        }
        for (key, v) in &self.base_entries {
            lines.push(format!("{key} = {v}"));
        }
        lines.push(format!("sweep = {}", self.sweep_key));
        lines.push(format!("values = {}", join_f64(&self.values)));
        lines.push(format!("horizon = {}", self.horizon));
        if !self.sample_times.is_empty() {
            lines.push(format!("sample-times = {}", join_f64(&self.sample_times)));
        }
        lines.push(format!("measures = {}", self.measures.join(", ")));
        for a in &self.asserts {
            lines.push(format!("assert = {a}"));
        }
        if let Some(r) = self.reps {
            lines.push(format!("reps = {r}"));
        }
        if let Some(s) = self.seed {
            lines.push(format!("seed = {s}"));
        }
        if let Some(c) = self.confidence {
            lines.push(format!("confidence = {c}"));
        }
        if let Some(split) = &self.split {
            lines.push(format!("split-levels = {split}"));
        }
        lines
    }

    /// FNV-1a hash of the canonical form — the scenario's identity in
    /// result-store fingerprints (`scn=<hash>`).
    pub fn content_hash(&self) -> String {
        let lines = self.canonical_lines();
        fingerprint_iter(lines.iter().map(String::as_str))
    }
}

fn join_f64(v: &[f64]) -> String {
    v.iter().map(f64::to_string).collect::<Vec<_>>().join(", ")
}

impl fmt::Display for FileScenario {
    /// The canonical `.scn` text; reparsing it yields an equal scenario
    /// with the same [`FileScenario::content_hash`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in self.canonical_lines() {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

impl Scenario for FileScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn points(&self, _backend: BackendKind) -> Vec<SweepPoint> {
        self.compose().expect("validated at parse time")
    }

    fn measures(&self) -> Vec<String> {
        self.measures.clone()
    }

    fn render(&self, series: &[Series]) -> FigureResult {
        let panels = self
            .measures
            .iter()
            .enumerate()
            .map(|(i, measure)| Panel {
                id: format!("{}-{}", self.name, i + 1),
                title: measure.clone(),
                series: series
                    .iter()
                    .filter(|s| &s.measure == measure)
                    .cloned()
                    .collect(),
            })
            .collect();
        FigureResult {
            id: self.name.clone(),
            title: self.description.clone(),
            x_label: self.sweep_key.clone(),
            panels,
        }
    }

    fn asserts(&self) -> Vec<MarkingAssert> {
        self.asserts.clone()
    }

    fn fingerprint_parts(&self) -> Vec<String> {
        vec![format!("scn={}", self.content_hash())]
    }

    fn configure(&self, cfg: &mut SweepConfig, split: &mut Option<SplitSpec>) {
        if let Some(r) = self.reps {
            cfg.replications = r;
        }
        if let Some(s) = self.seed {
            cfg.base_seed = s;
        }
        if let Some(c) = self.confidence {
            cfg.confidence = c;
        }
        if let Some(s) = &self.split {
            *split = if s.is_empty() { None } else { Some(s.clone()) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPREAD: &str = "\
# Figure-5-style spread sweep, reduced.
name = spread-demo
description = Attack spread under both schemes
domains = 4
hosts-per-domain = 2
apps = 2
reps-per-app = 3
schemes = domain-exclusion, host-exclusion
sweep = spread-rate-domain
values = 0, 2, 4
horizon = 5
measures = unavailability, frac_domains_excluded@5
reps = 12
";

    #[test]
    fn parses_and_composes_the_scheme_cross_product() {
        let s = FileScenario::parse(SPREAD, "fallback").unwrap();
        assert_eq!(s.name(), "spread-demo");
        let pts = s.points(BackendKind::Des);
        assert_eq!(pts.len(), 6); // 2 schemes × 3 values
        assert_eq!(pts[0].series, "Domain exclusion");
        assert_eq!(pts[3].series, "Host exclusion");
        assert_eq!(pts[5].params.spread_rate_domain, 4.0);
        assert_eq!(pts[0].sample_times, vec![5.0]); // from the @5 suffix
        assert_eq!(pts[0].params.num_domains, 4);
    }

    #[test]
    fn pinned_settings_configure_the_sweep() {
        let s = FileScenario::parse(SPREAD, "x").unwrap();
        let mut cfg = SweepConfig::default();
        let mut split = None;
        s.configure(&mut cfg, &mut split);
        assert_eq!(cfg.replications, 12);
        assert_eq!(cfg.base_seed, SweepConfig::default().base_seed); // not pinned
        assert!(split.is_none());
    }

    #[test]
    fn round_trips_through_canonical_form() {
        let s = FileScenario::parse(SPREAD, "x").unwrap();
        let reparsed = FileScenario::parse(&s.to_string(), "y").unwrap();
        assert_eq!(s, reparsed);
        assert_eq!(s.content_hash(), reparsed.content_hash());
    }

    #[test]
    fn formatting_does_not_change_identity_but_content_does() {
        let s = FileScenario::parse(SPREAD, "x").unwrap();
        let commented = format!("# a new comment\n{SPREAD}");
        assert_eq!(
            s.content_hash(),
            FileScenario::parse(&commented, "x").unwrap().content_hash()
        );
        let edited = SPREAD.replace("values = 0, 2, 4", "values = 0, 2, 4, 8");
        assert_ne!(
            s.content_hash(),
            FileScenario::parse(&edited, "x").unwrap().content_hash()
        );
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let err = FileScenario::parse("nmae = typo\n", "x").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("unknown key 'nmae'"));

        let err = FileScenario::parse("sweep = attack-rate\n", "x").unwrap_err();
        assert!(err.message.contains("not a sweepable key"));

        let bad_measure = SPREAD.replace("unavailability", "availability");
        let err = FileScenario::parse(&bad_measure, "x").unwrap_err();
        assert!(err.message.contains("unknown measure 'availability'"));
    }

    #[test]
    fn rejects_malformed_values() {
        assert!(FileScenario::parse("values\n", "x").is_err()); // no '='
        let err = FileScenario::parse("horizon = five\n", "x").unwrap_err();
        assert!(err.message.contains("not a number"));
        let err = FileScenario::parse("domains = 2.5\n", "x").unwrap_err();
        assert!(err.message.contains("positive integer"));
        let bad_split = SPREAD.to_owned() + "split-levels = 1y8\n";
        let err = FileScenario::parse(&bad_split, "x").unwrap_err();
        assert!(err.message.contains("bad split spec"));
    }

    #[test]
    fn requires_sweep_values_and_measures() {
        let err = FileScenario::parse("name = empty\n", "x").unwrap_err();
        assert_eq!(err.line, None);
        assert!(err.message.contains("missing 'sweep'"));
    }

    #[test]
    fn rejects_sample_times_beyond_the_horizon() {
        let bad = SPREAD.replace("horizon = 5", "horizon = 3");
        let err = FileScenario::parse(&bad, "x").unwrap_err();
        assert!(err.message.contains("beyond the horizon"));
    }

    #[test]
    fn assert_lines_append_round_trip_and_change_identity() {
        let text = SPREAD.to_owned()
            + "assert = max(*/host_corrupt) <= 1\nassert = sum(itua/apps[*]/*) >= 0\n";
        let s = FileScenario::parse(&text, "x").unwrap();
        let asserts = Scenario::asserts(&s);
        assert_eq!(asserts.len(), 2); // repeated lines append, not overwrite
        assert_eq!(asserts[0].to_string(), "max(*/host_corrupt) <= 1");
        let reparsed = FileScenario::parse(&s.to_string(), "x").unwrap();
        assert_eq!(s, reparsed);
        // Claims are part of the scenario's identity.
        assert_ne!(
            s.content_hash(),
            FileScenario::parse(SPREAD, "x").unwrap().content_hash()
        );
        let err =
            FileScenario::parse(&(SPREAD.to_owned() + "assert = avg(x) <= 1\n"), "x").unwrap_err();
        assert!(err.message.contains("unknown aggregate"));
        assert!(err.line.is_some());
    }

    #[test]
    fn split_levels_round_trip_and_configure() {
        let text = SPREAD.to_owned() + "split-levels = 1x8,2x4\n";
        let s = FileScenario::parse(&text, "x").unwrap();
        let mut split = None;
        s.configure(&mut SweepConfig::default(), &mut split);
        assert_eq!(split.unwrap().to_string(), "1x8,2x4");
        let reparsed = FileScenario::parse(&s.to_string(), "x").unwrap();
        assert_eq!(s, reparsed);
    }
}

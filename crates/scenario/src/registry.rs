//! Built-in scenarios: the shipped studies wrapped as [`Scenario`]s.
//!
//! Each entry is a declarative wrapper over an
//! [`itua_studies::study::Study`] descriptor — same sweep id, same
//! points, same renderer, empty [`Scenario::fingerprint_parts`] — so
//! `itua run figure3` writes a store byte-identical to the legacy
//! `figure3` binary's. The `all-figures` composite runs Figures 3–5
//! sequentially under shared options.

use crate::Scenario;
use itua_runner::backend::BackendKind;
use itua_studies::study::{self, Study};
use itua_studies::sweep::{FigureResult, RunOpts, Series, SweepConfig, SweepPoint};
use std::io;

/// A [`Study`] descriptor exposed as a built-in scenario.
#[derive(Debug, Clone, Copy)]
pub struct StudyScenario {
    study: &'static Study,
}

impl StudyScenario {
    /// The wrapped descriptor.
    pub fn study(&self) -> &'static Study {
        self.study
    }
}

impl Scenario for StudyScenario {
    fn name(&self) -> &str {
        self.study.id
    }

    fn description(&self) -> &str {
        self.study.description
    }

    fn points(&self, backend: BackendKind) -> Vec<SweepPoint> {
        self.study.points_for(backend)
    }

    fn measures(&self) -> Vec<String> {
        (self.study.measures)()
    }

    fn render(&self, series: &[Series]) -> FigureResult {
        (self.study.render)(series)
    }
}

/// The composite scenario running Figures 3, 4, and 5 in sequence with
/// shared execution options (one result store per figure, exactly as if
/// each were run alone).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllFigures;

impl AllFigures {
    fn figures() -> Vec<StudyScenario> {
        ["figure3", "figure4", "figure5"]
            .iter()
            .map(|id| StudyScenario {
                study: study::by_id(id).expect("shipped figure study"),
            })
            .collect()
    }
}

impl Scenario for AllFigures {
    fn name(&self) -> &str {
        "all-figures"
    }

    fn description(&self) -> &str {
        "Figures 3, 4, and 5 in sequence (shared options, separate stores)"
    }

    /// The union of the figures' points — what `itua check all-figures`
    /// verifies.
    fn points(&self, backend: BackendKind) -> Vec<SweepPoint> {
        Self::figures()
            .iter()
            .flat_map(|f| f.points(backend))
            .collect()
    }

    fn measures(&self) -> Vec<String> {
        Self::figures()
            .iter()
            .flat_map(super::Scenario::measures)
            .collect()
    }

    fn render(&self, series: &[Series]) -> FigureResult {
        // Only reachable through the per-figure `run`, which renders via
        // each figure's own Study; keep a sane fallback anyway.
        (study::by_id("figure3").expect("shipped").render)(series)
    }

    fn run(&self, cfg: &SweepConfig, opts: &RunOpts<'_>) -> io::Result<Vec<FigureResult>> {
        let mut out = Vec::new();
        for figure in Self::figures() {
            out.extend(figure.run(cfg, opts)?);
        }
        Ok(out)
    }
}

/// All built-in scenarios, in presentation order.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    let mut all: Vec<Box<dyn Scenario>> = study::all()
        .iter()
        .map(|study| Box::new(StudyScenario { study }) as Box<dyn Scenario>)
        .collect();
    all.push(Box::new(AllFigures));
    all
}

/// Looks up a built-in scenario by name.
pub fn find(name: &str) -> Option<Box<dyn Scenario>> {
    registry().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_the_five_shipped_scenarios() {
        let names: Vec<String> = registry().iter().map(|s| s.name().to_owned()).collect();
        assert_eq!(
            names,
            [
                "figure3",
                "figure4",
                "figure5",
                "sensitivity",
                "all-figures"
            ]
        );
    }

    #[test]
    fn builtins_carry_no_extra_fingerprint_parts() {
        for s in registry() {
            assert!(
                s.fingerprint_parts().is_empty(),
                "{} would break byte-identity with its legacy store",
                s.name()
            );
        }
    }

    #[test]
    fn builtin_points_match_their_study() {
        let s = find("figure3").unwrap();
        let study = study::by_id("figure3").unwrap();
        let a = s.points(BackendKind::Des);
        let b = study.points_for(BackendKind::Des);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].series, b[0].series);
        // Analytic backend substitutes the micro variant, as the legacy
        // binary did.
        let micro = s.points(BackendKind::Analytic);
        assert_ne!(micro.len(), a.len());
    }

    #[test]
    fn all_figures_unions_the_three_figures() {
        let all = find("all-figures").unwrap();
        let per_figure: usize = ["figure3", "figure4", "figure5"]
            .iter()
            .map(|id| find(id).unwrap().points(BackendKind::Des).len())
            .sum();
        assert_eq!(all.points(BackendKind::Des).len(), per_figure);
        assert!(find("figure6").is_none());
    }
}

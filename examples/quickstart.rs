//! Quickstart: estimate the intrusion tolerance of an ITUA deployment.
//!
//! Builds the paper's baseline system (10 security domains × 3 hosts,
//! 4 replicated applications × 7 replicas), runs 2 000 independent
//! replications of the first 10 hours after deployment, and prints the
//! §4 measures with 95 % confidence intervals.
//!
//! Run with: `cargo run --release --example quickstart`

use itua_repro::itua::des::ItuaDes;
use itua_repro::itua::measures::MeasureSet;
use itua_repro::itua::params::Params;

fn main() {
    let params = Params::default()
        .with_domains(10, 3)
        .with_applications(4, 7);
    println!("ITUA replication system, baseline configuration:");
    println!(
        "  {} domains × {} hosts, {} applications × {} replicas",
        params.num_domains, params.hosts_per_domain, params.num_apps, params.reps_per_app
    );
    println!(
        "  per-host attack rate {:.4}/h, per-replica {:.4}/h, per-manager {:.4}/h\n",
        params.host_attack_rate(),
        params.replica_attack_rate(),
        params.manager_attack_rate()
    );

    let des = ItuaDes::new(params).expect("baseline parameters are valid");
    let horizon = 10.0;
    let mut measures = MeasureSet::new(0.95);
    for seed in 0..2_000 {
        let out = des.run(seed, horizon, &[5.0, 10.0]);
        measures.record(&out);
    }

    println!("Measures over [0, {horizon}] hours (95% confidence):");
    for est in measures.estimates() {
        println!("  {:<32} {}", est.name, est.ci);
    }
}

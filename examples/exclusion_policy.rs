//! The paper's §4.3 management-policy question: when an intrusion is
//! detected, should the whole security domain be excluded (preemptive
//! strike) or only the corrupt host?
//!
//! Compares the two schemes across within-domain attack-spread rates, like
//! Figure 5, and prints which policy wins each cell.
//!
//! Run with: `cargo run --release --example exclusion_policy`

use itua_repro::itua::des::ItuaDes;
use itua_repro::itua::measures::{names, MeasureSet};
use itua_repro::itua::params::{ManagementScheme, Params};

fn estimate(scheme: ManagementScheme, spread: f64, horizon: f64) -> (f64, f64) {
    let params = Params::default()
        .with_domains(10, 3)
        .with_applications(4, 7)
        .with_scheme(scheme)
        .with_host_corruption_multiplier(5.0)
        .with_spread_rate(spread);
    let des = ItuaDes::new(params).expect("valid parameters");
    let mut ms = MeasureSet::new(0.95);
    for seed in 0..800 {
        ms.record(&des.run(seed, horizon, &[]));
    }
    (
        ms.mean(names::UNAVAILABILITY).unwrap_or(0.0),
        ms.mean(names::UNRELIABILITY).unwrap_or(0.0),
    )
}

fn main() {
    println!("Domain-exclusion vs host-exclusion (host corruption ×5, as in §4.3)\n");
    println!(
        "{:>7} {:>8} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
        "spread",
        "horizon",
        "dom unavl",
        "host unavl",
        "winner",
        "dom unrel",
        "host unrel",
        "winner"
    );
    for &horizon in &[5.0, 10.0] {
        for &spread in &[0.0, 4.0, 10.0] {
            let (du, dr) = estimate(ManagementScheme::DomainExclusion, spread, horizon);
            let (hu, hr) = estimate(ManagementScheme::HostExclusion, spread, horizon);
            let w = |d: f64, h: f64| if d < h { "domain" } else { "host" };
            println!(
                "{:>7} {:>8} | {:>10.5} {:>10.5} {:>8} | {:>10.5} {:>10.5} {:>8}",
                spread,
                horizon,
                du,
                hu,
                w(du, hu),
                dr,
                hr,
                w(dr, hr)
            );
        }
    }
    println!(
        "\nThe paper's qualitative finding — host exclusion is cheaper in the short run, \
         \nwhile fast within-domain spread argues for the preemptive domain exclusion — \
         \ncan be probed here by varying the spread rate and horizon."
    );
}

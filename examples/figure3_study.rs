//! The paper's §4.1 study: how should a fixed pool of hosts be divided
//! into security domains?
//!
//! Reproduces Figure 3 at reduced replication count (use the
//! `figure3` binary in `crates/bench` for publication-grade runs) and
//! prints the design-question answer the paper derives from it.
//!
//! Run with: `cargo run --release --example figure3_study`

use itua_repro::studies::sweep::SweepConfig;
use itua_repro::studies::{figure3, table};

fn main() {
    let cfg = SweepConfig {
        replications: 500,
        ..SweepConfig::default()
    };
    let fig = figure3::run(&cfg);
    println!("{}", table::render(&fig));

    // The design question of §4.1: is it better to use many small domains?
    let unavail = &fig.panels[0].series[1]; // 4 applications
    let (first, last) = (
        unavail.points.first().expect("has points"),
        unavail.points.last().expect("has points"),
    );
    println!(
        "Unavailability with 1 host/domain: {:.4}; with 12 hosts/domain: {:.4}",
        first.1.mean, last.1.mean
    );
    println!(
        "=> distribute hosts into as many domains as physical constraints allow\n   \
         (the paper's §4.1 conclusion)."
    );
}

//! Using the SAN framework directly: model a small intrusion-tolerant
//! cluster by hand, estimate a measure by simulation, and verify it
//! against the exact CTMC solution (the Möbius analytic path).
//!
//! Run with: `cargo run --release --example custom_san`

use itua_repro::runner::experiment::ExperimentConfig;
use itua_repro::runner::{run_experiment_parallel, NullProgress, RunnerConfig};
use itua_repro::san::model::SanBuilder;
use itua_repro::san::reward::{RewardVariable, TimeAveraged};
use itua_repro::san::simulator::SanSimulator;
use itua_repro::san::statespace::StateSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-replica cluster: replicas fail (are corrupted) at rate 0.2/h and
    // a recovery service restores one at a time at rate 1/h. Service is
    // down when fewer than 2 replicas are up.
    let mut b = SanBuilder::new("cluster");
    let up = b.place("up", 3);
    let down = b.place("down", 0);
    b.timed_activity_fn(
        "corrupt",
        std::sync::Arc::new(move |m| 0.2 * m.get(up) as f64),
        &[up],
    )
    .input_arc(up, 1)
    .output_arc(down, 1)
    .build()?;
    b.timed_activity("recover", 1.0)
        .input_arc(down, 1)
        .output_arc(up, 1)
        .build()?;
    let san = b.finish()?;

    // Simulation estimate of unavailability over [0, 1000], run through
    // the unified parallel pipeline (bit-identical for any thread count).
    let sim = SanSimulator::new(san.clone());
    let cfg = ExperimentConfig {
        horizon: 1000.0,
        replications: 200,
        ..ExperimentConfig::default()
    };
    let estimates = run_experiment_parallel(
        &sim,
        cfg,
        &RunnerConfig::default(),
        &NullProgress,
        move || {
            vec![Box::new(TimeAveraged::new("unavailability", move |m| {
                if m.get(up) < 2 {
                    1.0
                } else {
                    0.0
                }
            })) as Box<dyn RewardVariable>]
        },
    )?;
    println!("simulation: {}", estimates[0].ci);

    // Exact steady-state solution via the CTMC path.
    let ss = StateSpace::generate(&san, 1000)?;
    let ctmc = ss.to_ctmc()?;
    let pi = ctmc.steady_state(1e-12, 1_000_000)?;
    let exact: f64 = (0..ss.num_states())
        .filter(|&s| ss.marking(s).get(up) < 2)
        .map(|s| pi[s])
        .sum();
    println!("exact CTMC:  {exact:.6}");

    let err = (estimates[0].ci.mean - exact).abs();
    println!("difference:  {err:.6}");
    assert!(
        err < 3.0 * estimates[0].ci.half_width.max(1e-4),
        "simulation and analytic solution disagree"
    );
    Ok(())
}

//! Analytic validation: models with closed-form answers are solved three
//! ways — closed form, numerical CTMC (the Möbius analytic path), and SAN
//! simulation — and all three must agree.
//!
//! The CTMC legs run through the same production helpers the analytic
//! backend uses ([`StateSpace::expected_reward`],
//! [`Ctmc::transient_multi`], [`Ctmc::absorption_by`]), so any drift in
//! those paths fails here against closed forms, not just against another
//! implementation.

use itua_repro::itua::measures::names;
use itua_repro::itua::params::Params;
use itua_repro::itua::san_model;
use itua_repro::markov::ctmc::Ctmc;
use itua_repro::runner::experiment::ExperimentConfig;
use itua_repro::runner::run_experiment_parallel;
use itua_repro::runner::{
    run_measures, BackendKind, BackendOptions, ItuaBackend, NullProgress, RunnerConfig,
};
use itua_repro::san::model::SanBuilder;
use itua_repro::san::reward::{EverTrue, TimeAveraged};
use itua_repro::san::simulator::SanSimulator;
use itua_repro::san::statespace::StateSpace;
use std::sync::Arc;

/// Two-state repairable system: closed-form transient availability.
#[test]
fn repairable_system_three_ways() {
    let (lambda, mu): (f64, f64) = (0.5, 2.0);

    // Closed form: P(down at t) = λ/(λ+μ)(1 − e^{−(λ+μ)t}).
    let t = 1.5;
    let down_at = |t: f64| lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp());
    let closed = down_at(t);

    // CTMC path, solving several time points in one uniformization pass
    // (the production `transient_multi` the analytic backend uses).
    let ctmc = Ctmc::from_rates(2, &[(0, 1, lambda), (1, 0, mu)]).unwrap();
    let times = [0.5, t, 4.0];
    let dists = ctmc.transient_multi(&[1.0, 0.0], &times, 1e-12).unwrap();
    for (&ti, dist) in times.iter().zip(&dists) {
        assert!(
            (dist[1] - down_at(ti)).abs() < 1e-9,
            "CTMC at {ti}: {dist:?} vs closed {}",
            down_at(ti)
        );
    }

    // SAN-simulation path (instant-of-time estimated via many runs).
    let mut b = SanBuilder::new("repairable");
    let up = b.place("up", 1);
    let down = b.place("down", 0);
    b.timed_activity("fail", lambda)
        .input_arc(up, 1)
        .output_arc(down, 1)
        .build()
        .unwrap();
    b.timed_activity("repair", mu)
        .input_arc(down, 1)
        .output_arc(up, 1)
        .build()
        .unwrap();
    let san = b.finish().unwrap();
    let sim = SanSimulator::new(san.clone());
    let mut hits = 0u32;
    let n = 20_000;
    for seed in 0..n {
        use itua_repro::san::reward::{InstantOfTime, RewardVariable};
        let mut rv = InstantOfTime::new("down", vec![t], move |m| m.get(down) as f64);
        sim.run(seed as u64, t, &mut [&mut rv]).unwrap();
        if rv.observations()[0].value > 0.5 {
            hits += 1;
        }
    }
    let est = hits as f64 / n as f64;
    let se = (closed * (1.0 - closed) / n as f64).sqrt();
    assert!(
        (est - closed).abs() < 5.0 * se,
        "simulation {est} vs closed {closed} (5σ = {:.5})",
        5.0 * se
    );

    // State-space flattening agrees with the hand-built CTMC; the reward
    // expectation goes through the production `expected_reward`.
    let ss = StateSpace::generate(&san, 16).unwrap();
    let p2 = ss
        .to_ctmc()
        .unwrap()
        .transient(&ss.initial_distribution(), t, 1e-12)
        .unwrap();
    let down_prob = ss.expected_reward(&p2, |m| m.get(down) as f64);
    assert!((down_prob - closed).abs() < 1e-9);
}

/// M/M/1/K queue: steady-state distribution has the truncated-geometric
/// closed form; checked via state space + steady-state solver and via a
/// long simulation with a time-averaged reward.
#[test]
fn mm1k_queue_three_ways() {
    let (lambda, mu, k) = (1.0, 2.0, 4i32);
    let rho: f64 = lambda / mu;

    let mut b = SanBuilder::new("mm1k");
    let queue = b.place("queue", 0);
    b.timed_activity("arrive", lambda)
        .predicate(&[queue], move |m| m.get(queue) < k)
        .output_arc(queue, 1)
        .build()
        .unwrap();
    b.timed_activity("serve", mu)
        .input_arc(queue, 1)
        .build()
        .unwrap();
    let san = b.finish().unwrap();

    // Closed form: π_n ∝ ρⁿ.
    let z: f64 = (0..=k).map(|n| rho.powi(n)).sum();
    let mean_closed: f64 = (0..=k).map(|n| n as f64 * rho.powi(n) / z).sum();

    // CTMC steady state, reward expectation via `expected_reward`.
    let ss = StateSpace::generate(&san, 100).unwrap();
    assert_eq!(ss.num_states(), (k + 1) as usize);
    let pi = ss
        .to_ctmc()
        .unwrap()
        .steady_state(1e-13, 1_000_000)
        .unwrap();
    let mean_ctmc = ss.expected_reward(&pi, |m| m.get(queue) as f64);
    assert!(
        (mean_ctmc - mean_closed).abs() < 1e-8,
        "{mean_ctmc} vs {mean_closed}"
    );

    // Long-run simulation with a time-averaged queue length, through the
    // unified parallel pipeline.
    let sim = SanSimulator::new(san);
    let cfg = ExperimentConfig {
        horizon: 2_000.0,
        replications: 60,
        base_seed: 5,
        confidence: 0.99,
    };
    let est = run_experiment_parallel(
        &sim,
        cfg,
        &RunnerConfig::default(),
        &NullProgress,
        move || {
            use itua_repro::san::reward::RewardVariable;
            vec![
                Box::new(TimeAveraged::new("len", move |m| m.get(queue) as f64))
                    as Box<dyn RewardVariable>,
            ]
        },
    )
    .unwrap();
    assert!(
        (est[0].ci.mean - mean_closed).abs() < 0.02,
        "simulated mean {} vs closed {mean_closed}",
        est[0].ci.mean
    );
}

/// A pure-death process: unreliability (probability the system ever
/// emptied) has the closed form of an Erlang-like CDF; checked against
/// the sticky EverTrue reward variable and against the production
/// CTMC absorption path (`StateSpace` → `to_ctmc` → `absorption_by`).
#[test]
fn pure_death_unreliability() {
    let rate = 1.0;
    let n0 = 3;
    let t: f64 = 2.0;

    let mut b = SanBuilder::new("death");
    let alive = b.place("alive", n0);
    b.timed_activity_fn(
        "die",
        Arc::new(move |m| rate * m.get(alive) as f64),
        &[alive],
    )
    .input_arc(alive, 1)
    .build()
    .unwrap();
    let san = b.finish().unwrap();

    // Time to extinction = max of 3 iid Exp(1) lifetimes (death rate is
    // proportional to survivors): P(extinct by t) = (1 − e^{−t})³.
    let closed = (1.0 - (-t).exp()).powi(3);

    // Production analytic path: the extinct marking is the chain's only
    // absorbing state, so `absorption_by` is the first-passage CDF.
    let ss = StateSpace::generate(&san, 16).unwrap();
    let extinct = ss
        .to_ctmc()
        .unwrap()
        .absorption_by(&ss.initial_distribution(), t, 1e-12)
        .unwrap();
    assert!(
        (extinct - closed).abs() < 1e-9,
        "absorption {extinct} vs closed {closed}"
    );

    let sim = SanSimulator::new(san);
    let mut hits = 0;
    let n = 20_000;
    for seed in 0..n {
        use itua_repro::san::reward::RewardVariable;
        let mut rv = EverTrue::new(
            "extinct",
            move |m| if m.get(alive) == 0 { 1.0 } else { 0.0 },
        );
        sim.run(seed as u64, t, &mut [&mut rv]).unwrap();
        if rv.observations()[0].value > 0.5 {
            hits += 1;
        }
    }
    let est = hits as f64 / n as f64;
    let se = (closed * (1.0 - closed) / n as f64).sqrt();
    assert!(
        (est - closed).abs() < 5.0 * se,
        "estimate {est} vs closed {closed}"
    );
}

/// The analytic ITUA backend, driven through the unified `run_measures`
/// pipeline, matches a bespoke solve built directly from the state
/// space: flatten the composed SAN, accumulate the improper-service
/// reward, and divide by the horizon. The backend runs with `--no-lump`
/// here because the claim is bit-for-bit pipeline wiring against the
/// *unreduced* chain the direct solve builds; the lumped quotient is a
/// different (smaller) chain, checked against this one to 1e-9 in
/// `tests/lumped_agreement.rs`.
#[test]
fn analytic_backend_matches_direct_state_space_solve() {
    let mut params = Params::default().with_domains(1, 2).with_applications(1, 2);
    params.spread_rate_domain = 0.0;
    params.spread_rate_system = 0.0;
    let horizon = 5.0;

    // Direct computation from the flattened state space.
    let model = san_model::build(&params).unwrap();
    let ss = StateSpace::generate(&model.san, 100_000).unwrap();
    let improper = ss.reward_vector(|m| model.places.improper_fraction(m));
    let expected = ss
        .to_ctmc()
        .unwrap()
        .expected_accumulated_reward(&ss.initial_distribution(), &improper, horizon, 1e-10)
        .unwrap()
        / horizon;

    // Production pipeline, pinned to the unreduced chain.
    let opts = BackendOptions {
        analytic_lump: false,
        ..BackendOptions::default()
    };
    let backend = ItuaBackend::for_params_with(BackendKind::Analytic, &params, &opts).unwrap();
    let ms = run_measures(
        &backend,
        50,
        0.95,
        7,
        horizon,
        &[horizon],
        &RunnerConfig::default(),
        &NullProgress,
    )
    .unwrap();
    let unavailability = ms.mean(names::UNAVAILABILITY).unwrap();
    assert_eq!(
        unavailability, expected,
        "pipeline and direct solve must agree bit for bit"
    );
    assert!(unavailability > 0.0 && unavailability < 1.0);
}

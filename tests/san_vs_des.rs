//! Cross-validation: the SAN encoding (Figure 2) and the direct
//! discrete-event encoding of the ITUA model describe the same stochastic
//! process, so their measures must agree within confidence intervals.
//!
//! This is the repository's strongest internal-consistency check: the two
//! implementations share no model code (only the parameter set), so any
//! semantic divergence shows up as a statistically significant gap. Both
//! encodings run through the unified backend pipeline
//! ([`itua_repro::runner::run_measures`]), which spreads the replications
//! over worker threads with per-thread scratch reuse — so this also
//! exercises exactly the code path the figure binaries use with
//! `--backend des` / `--backend san`.
//!
//! `frac_corrupt_hosts_at_exclusion` is deliberately not compared: the
//! SAN's measure-only accumulator cannot attribute replica-only
//! corruption to its host at exclusion time (see
//! `itua_core::san_exec`), so that one measure is DES-only.

use itua_repro::itua::measures::names;
use itua_repro::itua::params::{ManagementScheme, Params};
use itua_repro::runner::{run_measures, BackendKind, ItuaBackend, NullProgress, RunnerConfig};
use itua_repro::stats::replication::Estimate;

/// Runs one configuration through the unified pipeline on the given
/// backend and returns the 99% estimates.
fn estimates(
    kind: BackendKind,
    params: &Params,
    horizon: f64,
    reps: u32,
    origin_seed: u64,
) -> Vec<Estimate> {
    let backend = ItuaBackend::for_params(kind, params).expect("valid params");
    run_measures(
        &backend,
        reps,
        0.99,
        origin_seed,
        horizon,
        &[horizon],
        &RunnerConfig::default(),
        &NullProgress,
    )
    .expect("simulation succeeds")
    .estimates()
}

/// Asserts the 99% intervals of the named measure overlap between the
/// two backends (a conservative two-sample check that keeps the
/// false-failure rate of the suite low).
fn assert_agree(san: &[Estimate], des: &[Estimate], measure: &str) {
    let find = |ests: &[Estimate], tag: &str| -> itua_repro::stats::ci::ConfidenceInterval {
        ests.iter()
            .find(|e| e.name == measure)
            .unwrap_or_else(|| panic!("{tag} produced no estimate for {measure}"))
            .ci
    };
    let cs = find(san, "SAN");
    let cd = find(des, "DES");
    assert!(
        cs.overlaps(&cd),
        "{measure}: SAN {cs} vs DES {cd} do not overlap"
    );
}

/// Runs both backends (independent seed streams) and checks the shared
/// measures agree.
fn compare(params: Params, horizon: f64, reps: u32) {
    let san = estimates(BackendKind::San, &params, horizon, reps, 1);
    let des = estimates(BackendKind::Des, &params, horizon, reps, 2);
    let excluded = format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, horizon);
    for measure in [
        names::UNAVAILABILITY,
        names::UNRELIABILITY,
        excluded.as_str(),
    ] {
        assert_agree(&san, &des, measure);
    }
}

#[test]
fn domain_exclusion_measures_agree() {
    let params = Params::default().with_domains(4, 2).with_applications(2, 3);
    compare(params, 5.0, 600);
}

#[test]
fn host_exclusion_measures_agree() {
    let params = Params::default()
        .with_domains(4, 2)
        .with_applications(2, 3)
        .with_scheme(ManagementScheme::HostExclusion);
    let san = estimates(BackendKind::San, &params, 5.0, 600, 1);
    let des = estimates(BackendKind::Des, &params, 5.0, 600, 2);
    // The host scheme never excludes whole domains, so only the
    // service-level measures are meaningful.
    assert_agree(&san, &des, names::UNAVAILABILITY);
    assert_agree(&san, &des, names::UNRELIABILITY);
}

#[test]
fn high_spread_measures_agree() {
    let params = Params::default()
        .with_domains(3, 3)
        .with_applications(2, 3)
        .with_host_corruption_multiplier(5.0)
        .with_spread_rate(10.0);
    compare(params, 5.0, 600);
}

#[test]
fn excluded_domains_fraction_agrees() {
    let params = Params::default().with_domains(5, 2).with_applications(2, 3);
    let horizon = 5.0;
    let san = estimates(BackendKind::San, &params, horizon, 500, 1);
    let des = estimates(BackendKind::Des, &params, horizon, 500, 2);
    assert_agree(
        &san,
        &des,
        &format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, horizon),
    );
}

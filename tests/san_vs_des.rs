//! Cross-validation: the SAN encoding (Figure 2) and the direct
//! discrete-event encoding of the ITUA model describe the same stochastic
//! process, so their measures must agree within confidence intervals.
//!
//! This is the repository's strongest internal-consistency check: the two
//! implementations share no model code (only the parameter set), so any
//! semantic divergence shows up as a statistically significant gap.

use itua_repro::itua::des::ItuaDes;
use itua_repro::itua::params::{ManagementScheme, Params};
use itua_repro::itua::san_model::{self, ItuaSanPlaces};
use itua_repro::san::marking::Marking;
use itua_repro::san::reward::{RewardVariable, TimeAveraged};
use itua_repro::san::simulator::{Observer, SanSimulator};
use itua_repro::stats::ci::ConfidenceInterval;
use itua_repro::stats::online::OnlineStats;

/// Sticky Byzantine flags per application, harvested after a run.
struct ByzFlags {
    places: ItuaSanPlaces,
    hit: Vec<bool>,
}

impl Observer for ByzFlags {
    fn on_init(&mut self, _t: f64, m: &Marking) {
        for a in 0..self.hit.len() {
            if self.places.byzantine(m, a) {
                self.hit[a] = true;
            }
        }
    }
    fn on_event(&mut self, _t: f64, _a: itua_repro::san::model::ActivityId, m: &Marking) {
        for a in 0..self.hit.len() {
            if !self.hit[a] && self.places.byzantine(m, a) {
                self.hit[a] = true;
            }
        }
    }
}

/// Runs both encodings and returns
/// `(san_unavail, des_unavail, san_unrel, des_unrel)` as per-replication
/// observation sets.
fn compare(params: Params, horizon: f64, reps: u64) -> [OnlineStats; 4] {
    // SAN side.
    let model = san_model::build(&params).expect("valid params");
    let sim = SanSimulator::new(model.san.clone());
    let mut san_unavail = OnlineStats::new();
    let mut san_unrel = OnlineStats::new();
    for seed in 0..reps {
        let places = model.places.clone();
        let mut unavail = TimeAveraged::new("unavail", move |m| places.improper_fraction(m));
        let mut byz = ByzFlags {
            places: model.places.clone(),
            hit: vec![false; params.num_apps],
        };
        sim.run(seed, horizon, &mut [&mut unavail, &mut byz])
            .expect("SAN run succeeds");
        san_unavail.push(unavail.observations()[0].value);
        let frac = byz.hit.iter().filter(|&&b| b).count() as f64 / params.num_apps as f64;
        san_unrel.push(frac);
    }

    // DES side (offset seeds: the estimators must be independent).
    let des = ItuaDes::new(params).expect("valid params");
    let mut des_unavail = OnlineStats::new();
    let mut des_unrel = OnlineStats::new();
    for seed in 0..reps {
        let out = des.run(1_000_000 + seed, horizon, &[]);
        des_unavail.push(out.unavailability(horizon));
        des_unrel.push(out.unreliability());
    }
    [san_unavail, des_unavail, san_unrel, des_unrel]
}

fn assert_agree(a: &OnlineStats, b: &OnlineStats, what: &str) {
    // 99% intervals; they must overlap (a conservative two-sample check
    // that keeps the false-failure rate of the suite low).
    let ca = ConfidenceInterval::from_stats(a, 0.99).unwrap();
    let cb = ConfidenceInterval::from_stats(b, 0.99).unwrap();
    assert!(
        ca.overlaps(&cb),
        "{what}: SAN {ca} vs DES {cb} do not overlap"
    );
}

#[test]
fn domain_exclusion_measures_agree() {
    let params = Params::default().with_domains(4, 2).with_applications(2, 3);
    let [su, du, sr, dr] = compare(params, 5.0, 600);
    assert_agree(&su, &du, "unavailability (domain scheme)");
    assert_agree(&sr, &dr, "unreliability (domain scheme)");
}

#[test]
fn host_exclusion_measures_agree() {
    let params = Params::default()
        .with_domains(4, 2)
        .with_applications(2, 3)
        .with_scheme(ManagementScheme::HostExclusion);
    let [su, du, sr, dr] = compare(params, 5.0, 600);
    assert_agree(&su, &du, "unavailability (host scheme)");
    assert_agree(&sr, &dr, "unreliability (host scheme)");
}

#[test]
fn high_spread_measures_agree() {
    let params = Params::default()
        .with_domains(3, 3)
        .with_applications(2, 3)
        .with_host_corruption_multiplier(5.0)
        .with_spread_rate(10.0);
    let [su, du, sr, dr] = compare(params, 5.0, 600);
    assert_agree(&su, &du, "unavailability (spread 10)");
    assert_agree(&sr, &dr, "unreliability (spread 10)");
}

#[test]
fn excluded_domains_fraction_agrees() {
    let params = Params::default().with_domains(5, 2).with_applications(2, 3);
    let horizon = 5.0;

    let model = san_model::build(&params).unwrap();
    let sim = SanSimulator::new(model.san.clone());
    struct Excl(itua_repro::san::marking::PlaceId, f64);
    impl Observer for Excl {
        fn on_end(&mut self, _t: f64, m: &Marking) {
            self.1 = m.get(self.0) as f64;
        }
    }
    let mut san_frac = OnlineStats::new();
    for seed in 0..500 {
        let mut obs = Excl(model.places.excluded_domains, 0.0);
        sim.run(seed, horizon, &mut [&mut obs]).unwrap();
        san_frac.push(obs.1 / params.num_domains as f64);
    }

    let des = ItuaDes::new(params.clone()).unwrap();
    let mut des_frac = OnlineStats::new();
    for seed in 0..500 {
        let out = des.run(2_000_000 + seed, horizon, &[horizon]);
        des_frac.push(out.snapshots[0].frac_domains_excluded);
    }
    assert_agree(&san_frac, &des_frac, "fraction of domains excluded");
}

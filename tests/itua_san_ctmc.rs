//! Third validation path: a micro ITUA configuration's SAN is flattened to
//! its exact CTMC (the Möbius analytic route) and the transient solution
//! is compared against discrete-event estimates from BOTH encodings.
//!
//! This exercises the full stack end to end: composed-model flattening →
//! state-space generation with vanishing-marking elimination → sparse
//! uniformization, against the SAN simulator and the independent DES.

use itua_repro::itua::des::ItuaDes;
use itua_repro::itua::params::Params;
use itua_repro::itua::san_model;
use itua_repro::markov::ctmc::Ctmc;
use itua_repro::san::statespace::StateSpace;

/// A deliberately tiny configuration so the state space stays small:
/// 2 domains × 1 host, 1 application × 2 replicas, no spread processes.
fn micro_params() -> Params {
    let mut p = Params::default().with_domains(2, 1).with_applications(1, 2);
    p.spread_rate_domain = 0.0;
    p.spread_rate_system = 0.0;
    p
}

#[test]
fn micro_itua_san_flattens_to_solvable_ctmc() {
    let model = san_model::build(&micro_params()).expect("build micro model");
    let ss = StateSpace::generate(&model.san, 2_000_000).expect("explore state space");
    assert!(ss.num_states() > 1, "nontrivial state space");
    let ctmc = ss.to_ctmc().expect("valid generator");

    // Transient unavailability at t = 5 from the exact CTMC.
    let t = 5.0;
    let p = ctmc
        .transient(&ss.initial_distribution(), t, 1e-10)
        .expect("transient solve");
    let places = &model.places;
    let improper_prob: f64 = (0..ss.num_states())
        .filter(|&s| places.improper(ss.marking(s), 0))
        .map(|s| p[s])
        .sum();
    assert!(
        (0.0..=1.0).contains(&improper_prob),
        "improper probability {improper_prob}"
    );

    let des = ItuaDes::new(micro_params()).unwrap();
    let n = 4000;

    // Expected accumulated improper time over [0, t] from the CTMC…
    let reward = ss.reward_vector(|m| if places.improper(m, 0) { 1.0 } else { 0.0 });
    let exact_unavail = ctmc
        .expected_accumulated_reward(&ss.initial_distribution(), &reward, t, 1e-10)
        .expect("accumulated reward")
        / t;

    // …against the DES unavailability estimate.
    let mut sum = 0.0;
    for seed in 0..n {
        sum += des.run(seed, t, &[]).unavailability(t);
    }
    let des_unavail = sum / n as f64;
    assert!(
        (des_unavail - exact_unavail).abs() < 0.02,
        "DES {des_unavail:.5} vs exact CTMC {exact_unavail:.5} \
         ({} states)",
        ss.num_states()
    );

    // …and against the SAN simulator's estimate on the same model.
    use itua_repro::san::reward::{RewardVariable, TimeAveraged};
    use itua_repro::san::simulator::SanSimulator;
    let sim = SanSimulator::new(model.san.clone());
    let mut sum = 0.0;
    let places2 = model.places.clone();
    for seed in 0..n {
        let p2 = places2.clone();
        let mut rv = TimeAveraged::new("u", move |m| if p2.improper(m, 0) { 1.0 } else { 0.0 });
        sim.run(seed, t, &mut [&mut rv]).unwrap();
        sum += rv.observations()[0].value;
    }
    let san_unavail = sum / n as f64;
    assert!(
        (san_unavail - exact_unavail).abs() < 0.02,
        "SAN sim {san_unavail:.5} vs exact CTMC {exact_unavail:.5}"
    );
}

#[test]
fn micro_itua_mean_time_to_service_failure() {
    // Augment the micro model's CTMC with absorption at improper states by
    // removing their outgoing transitions, then solve the MTTF.
    let model = san_model::build(&micro_params()).unwrap();
    let ss = StateSpace::generate(&model.san, 2_000_000).unwrap();
    let places = &model.places;
    let improper: Vec<bool> = (0..ss.num_states())
        .map(|s| places.improper(ss.marking(s), 0))
        .collect();
    let transitions: Vec<(usize, usize, f64)> = ss
        .transitions()
        .iter()
        .copied()
        .filter(|&(from, _, _)| !improper[from])
        .collect();
    let ctmc = Ctmc::from_rates(ss.num_states(), &transitions).unwrap();
    let mttf = ctmc
        .mean_time_to_absorption(&ss.initial_distribution(), 1e-10, 2_000_000)
        .expect("finite MTTF: every state can fail");
    assert!(mttf > 0.0 && mttf.is_finite());

    // Sanity: the probability of failing within its own MTTF should be
    // substantial (between e.g. 30% and 90% for roughly-exponential TTF).
    let p_fail = ctmc
        .absorption_by(&ss.initial_distribution(), mttf, 1e-10)
        .unwrap();
    assert!(
        (0.3..0.95).contains(&p_fail),
        "P(fail by MTTF = {mttf:.2}h) = {p_fail:.3}"
    );
}

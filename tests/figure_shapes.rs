//! Integration tests asserting the paper's qualitative findings (§4) on
//! the reproduction. These are the claims the studies were run to
//! establish; each test runs a reduced-size sweep and checks the ordering
//! or shape the paper reports.

use itua_repro::itua::des::ItuaDes;
use itua_repro::itua::measures::{names, MeasureSet};
use itua_repro::itua::params::{ManagementScheme, Params};

fn measure(params: Params, horizon: f64, reps: u64) -> MeasureSet {
    let des = ItuaDes::new(params).expect("valid params");
    let mut ms = MeasureSet::new(0.95);
    for seed in 0..reps {
        ms.record(&des.run(seed, horizon, &[horizon]));
    }
    ms
}

fn fig3_params(hosts_per_domain: usize) -> Params {
    Params::default()
        .with_domains(12 / hosts_per_domain, hosts_per_domain)
        .with_applications(4, 7)
}

/// §4.1 / Figure 3(a): "the system is more available when we have fewer
/// hosts per domain".
#[test]
fn unavailability_increases_with_hosts_per_domain() {
    let mut last = -1.0;
    for &hpd in &[1, 3, 6, 12] {
        let u = measure(fig3_params(hpd), 5.0, 400)
            .mean(names::UNAVAILABILITY)
            .unwrap();
        assert!(
            u >= last,
            "unavailability not increasing at {hpd} hosts/domain: {u} < {last}"
        );
        last = u;
    }
    assert!(
        last > 0.2,
        "12 hosts in one domain should be badly unavailable"
    );
}

/// §4.1 / Figure 3(b): unreliability rises rapidly up to 4 hosts per
/// domain, peaks there, and decreases for more hosts per domain.
#[test]
fn unreliability_peaks_at_four_hosts_per_domain() {
    let values: Vec<f64> = [1, 2, 3, 4, 6, 12]
        .iter()
        .map(|&hpd| {
            measure(fig3_params(hpd), 5.0, 1200)
                .mean(names::UNRELIABILITY)
                .unwrap()
        })
        .collect();
    let peak_idx = values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let peak_x = [1, 2, 3, 4, 6, 12][peak_idx];
    assert!(
        (3..=4).contains(&peak_x),
        "unreliability peak at {peak_x} hosts/domain (paper: 4): {values:?}"
    );
    assert!(values[0] < values[3], "must rise from 1 to 4 hosts/domain");
    assert!(values[5] < values[3], "must fall from 4 to 12 hosts/domain");
}

/// §4.1 / Figure 3(c): the fraction of corrupt hosts in an excluded
/// domain falls as domains grow (wasted resources), and is below 1 even
/// with one host per domain because of false alarms.
#[test]
fn corrupt_fraction_falls_with_domain_size() {
    let f1 = measure(fig3_params(1), 5.0, 500)
        .mean(names::FRAC_CORRUPT_AT_EXCLUSION)
        .unwrap();
    let f6 = measure(fig3_params(6), 5.0, 500)
        .mean(names::FRAC_CORRUPT_AT_EXCLUSION)
        .unwrap();
    assert!(f1 > f6, "fraction must fall with domain size: {f1} vs {f6}");
    assert!(f1 < 1.0, "false alarms keep the fraction below 1");
    assert!(
        f1 > 0.4,
        "with one host per domain most exclusions hit corruption"
    );
}

/// §4.1 / Figure 3(d): more hosts per domain → more domains excluded.
#[test]
fn excluded_fraction_rises_with_hosts_per_domain() {
    let key = format!("{}@5", names::FRAC_DOMAINS_EXCLUDED);
    let e1 = measure(fig3_params(1), 5.0, 400).mean(&key).unwrap();
    let e12 = measure(fig3_params(12), 5.0, 400).mean(&key).unwrap();
    assert!(
        e12 > e1 + 0.2,
        "12-host domains should be excluded far more: {e12} vs {e1}"
    );
}

/// §4.2 / Figure 4(a,b): with 10 fixed domains, adding hosts increases
/// unavailability and unreliability only mildly over [0,5], and both are
/// larger over [0,10].
#[test]
fn fig4_mild_increase_and_horizon_ordering() {
    let p1 = Params::default()
        .with_domains(10, 1)
        .with_applications(4, 7);
    let p4 = Params::default()
        .with_domains(10, 4)
        .with_applications(4, 7);
    let short1 = measure(p1.clone(), 5.0, 800);
    let short4 = measure(p4.clone(), 5.0, 800);
    let long4 = measure(p4, 10.0, 800);

    let u_short1 = short1.mean(names::UNAVAILABILITY).unwrap();
    let u_short4 = short4.mean(names::UNAVAILABILITY).unwrap();
    let u_long4 = long4.mean(names::UNAVAILABILITY).unwrap();
    assert!(u_short4 >= u_short1, "more hosts per domain cannot help");
    assert!(
        u_short4 < 0.05,
        "5-hour unavailability stays small (paper §4.2)"
    );
    assert!(
        u_long4 > u_short4,
        "longer interval accumulates more improper time"
    );

    let r_short4 = short4.mean(names::UNRELIABILITY).unwrap();
    let r_long4 = long4.mean(names::UNRELIABILITY).unwrap();
    assert!(r_long4 > r_short4);
}

/// §4.2: increasing hosts per domain (and hence cost) brings no
/// significant improvement — the paper's cost/benefit conclusion.
#[test]
fn fig4_extra_hosts_do_not_significantly_improve() {
    let p1 = Params::default()
        .with_domains(10, 1)
        .with_applications(4, 7);
    let p4 = Params::default()
        .with_domains(10, 4)
        .with_applications(4, 7);
    let u1 = measure(p1, 5.0, 800).mean(names::UNAVAILABILITY).unwrap();
    let u4 = measure(p4, 5.0, 800).mean(names::UNAVAILABILITY).unwrap();
    // Four times the hosts must not reduce unavailability measurably.
    assert!(u4 + 1e-9 >= u1, "u(4 hosts) = {u4} vs u(1 host) = {u1}");
}

/// §4.3 / Figure 5(a): in the short run at low spread, host exclusion
/// provides availability at least as good as domain exclusion.
#[test]
fn host_exclusion_no_worse_short_run_low_spread() {
    let base = Params::default()
        .with_domains(10, 3)
        .with_applications(4, 7)
        .with_host_corruption_multiplier(5.0)
        .with_spread_rate(0.0);
    let dom = measure(base.clone(), 5.0, 800)
        .mean(names::UNAVAILABILITY)
        .unwrap();
    let host = measure(base.with_scheme(ManagementScheme::HostExclusion), 5.0, 800)
        .mean(names::UNAVAILABILITY)
        .unwrap();
    assert!(
        host <= dom + 1e-6,
        "host exclusion worse at zero spread: {host} vs {dom}"
    );
}

/// §4.3 / Figure 5(c,d): host-exclusion unreliability is sensitive to the
/// within-domain spread rate (it degrades as spread grows), while
/// domain-exclusion changes comparatively little.
#[test]
fn host_exclusion_sensitive_to_spread() {
    let mk = |scheme, spread| {
        Params::default()
            .with_domains(10, 3)
            .with_applications(4, 7)
            .with_scheme(scheme)
            .with_host_corruption_multiplier(5.0)
            .with_spread_rate(spread)
    };
    let reps = 1500;
    let host0 = measure(mk(ManagementScheme::HostExclusion, 0.0), 10.0, reps)
        .mean(names::UNRELIABILITY)
        .unwrap();
    let host10 = measure(mk(ManagementScheme::HostExclusion, 10.0), 10.0, reps)
        .mean(names::UNRELIABILITY)
        .unwrap();
    assert!(
        host10 > host0,
        "host exclusion must degrade with spread: {host0} → {host10}"
    );

    let dom0 = measure(mk(ManagementScheme::DomainExclusion, 0.0), 10.0, reps)
        .mean(names::UNRELIABILITY)
        .unwrap();
    let dom10 = measure(mk(ManagementScheme::DomainExclusion, 10.0), 10.0, reps)
        .mean(names::UNRELIABILITY)
        .unwrap();
    // Relative sensitivity: the host scheme's degradation factor exceeds
    // the domain scheme's.
    let host_factor = host10 / host0.max(1e-4);
    let dom_factor = dom10 / dom0.max(1e-4);
    assert!(
        host_factor > dom_factor,
        "spread sensitivity: host ×{host_factor:.2} vs domain ×{dom_factor:.2}"
    );
}

//! End-to-end checks of the exhaustive reachability checker over the
//! composed ITUA models: the symmetry-reduced quotient must account for
//! the full state space exactly (orbit sizes sum to the unreduced
//! count), canonicalization must be invariant under arbitrary
//! domain/host/replica permutations, the explorer's tangible projection
//! must cross-validate against the analytic backend's state-space
//! builder on every shipped study's micro variant, and budget
//! exhaustion must be a structured error, not a hang.

use itua_analyzer::reach::{self, ReachConfig, ReachError};
use itua_core::params::Params;
use itua_core::{analysis, san_model};
use itua_san::marking::PlaceId;
use itua_san::model::San;
use itua_studies::{figure3, figure4, figure5};
use proptest::prelude::*;

fn micro_params() -> Params {
    Params::default().with_domains(1, 2).with_applications(1, 2)
}

/// All place indices whose names start with `prefix`, in insertion
/// order (congruent across template copies — same construction the
/// symmetry-spec builder uses).
fn places_under(san: &San, prefix: &str) -> Vec<usize> {
    (0..san.num_places())
        .filter(|&p| san.place_name(PlaceId::from_index(p)).starts_with(prefix))
        .collect()
}

#[test]
fn quotient_orbit_sizes_sum_to_the_full_state_count() {
    // Two micro shapes with different symmetry content: two
    // interchangeable hosts in one domain, and two interchangeable
    // single-host domains.
    for params in [
        micro_params(),
        Params::default().with_domains(2, 1).with_applications(1, 2),
    ] {
        let model = san_model::build(&params).unwrap();
        let spec = analysis::symmetry_spec(&model);
        let cfg = ReachConfig::with_max_states(200_000);
        let quotient = reach::explore(&model.san, &cfg, Some(&spec), |_, _, _, _, _| {}).unwrap();
        let full = reach::explore(&model.san, &cfg, None, |_, _, _, _, _| {}).unwrap();
        assert!(quotient.num_states() < full.num_states());
        assert_eq!(
            quotient.orbit_total(),
            full.num_states() as u128,
            "orbit sizes must partition the unreduced space exactly"
        );
        assert_eq!(
            quotient.tangible_orbit_total(),
            full.num_tangible() as u128,
            "the partition must respect the tangible/vanishing split"
        );
        // Exact place bounds agree between the two explorations.
        assert_eq!(quotient.place_max, full.place_max);
    }
}

#[test]
fn every_shipped_study_micro_variant_cross_validates_against_statespace() {
    // One representative micro point per shipped figure study: the
    // exhaustive explorer's tangible projection must reproduce the
    // analytic backend's BFS state count and transition multiset
    // exactly, and the quotient must agree with the unreduced oracle.
    // (CI's `itua check --exhaustive --backend analytic` covers every
    // distinct micro model at release speed.)
    let reps = [
        figure3::micro_points().swap_remove(0),
        figure4::micro_points().swap_remove(0),
        figure5::micro_points().swap_remove(0),
    ];
    for point in reps {
        let model = san_model::build(&point.params).unwrap();
        let report = analysis::exhaustive_check(&model, 200_000)
            .unwrap_or_else(|e| panic!("{} (x = {}): {e}", point.series, point.x));
        assert!(
            !report.has_hard_findings(),
            "{} (x = {}):\n{}",
            point.series,
            point.x,
            report.render()
        );
        let cross = analysis::cross_validate(&model, 200_000).unwrap();
        assert_eq!(cross.tangible_states, report.full_tangible as usize);
        let oracle = analysis::quotient_oracle(&model, 200_000).unwrap();
        assert_eq!(oracle.quotient_states, report.states);
        assert_eq!(oracle.full_states as u128, report.full_states);
    }
}

#[test]
fn state_and_work_budgets_fail_structurally() {
    let model = san_model::build(&micro_params()).unwrap();
    let spec = analysis::symmetry_spec(&model);
    let err = reach::explore(
        &model.san,
        &ReachConfig::with_max_states(10),
        Some(&spec),
        |_, _, _, _, _| {},
    )
    .unwrap_err();
    assert_eq!(err, ReachError::StateBudget { max_states: 10 });
    let tiny_work = ReachConfig {
        max_states: 200_000,
        max_work: 5,
    };
    let err = reach::explore(&model.san, &tiny_work, None, |_, _, _, _, _| {}).unwrap_err();
    assert_eq!(err, ReachError::WorkBudget { max_work: 5 });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Canonicalization is a true orbit invariant: permuting
    /// interchangeable domains, the hosts within each domain, or the
    /// replicas within an application never changes a marking's
    /// canonical form. The config has every symmetry axis at width two,
    /// so four independent swap bits generate the whole group.
    #[test]
    fn canonical_form_is_permutation_invariant(
        raw in prop::collection::vec(0i32..4, 256),
        swap_domains in any::<bool>(),
        swap_hosts_d0 in any::<bool>(),
        swap_hosts_d1 in any::<bool>(),
        swap_replicas in any::<bool>(),
    ) {
        let params = Params::default().with_domains(2, 2).with_applications(1, 2);
        let model = san_model::build(&params).unwrap();
        let san = &model.san;
        let spec = analysis::symmetry_spec(&model);
        let n = san.num_places();
        let original: Vec<i32> = (0..n).map(|i| raw[i % raw.len()]).collect();

        // Apply the chosen group element by swapping corresponding
        // index lists (the stamped templates make them congruent).
        let mut permuted = original.clone();
        let swap_lists = |vals: &mut Vec<i32>, a: &[usize], b: &[usize]| {
            assert_eq!(a.len(), b.len());
            for (&i, &j) in a.iter().zip(b) {
                vals.swap(i, j);
            }
        };
        let host_block = |d: usize, h: usize| {
            places_under(san, &format!("itua/domains[{d}]/hosts[{h}]/host/"))
        };
        let domain_all = |d: usize| {
            let mut v = places_under(san, &format!("itua/domains[{d}]/hosts/"));
            v.extend(host_block(d, 0));
            v.extend(host_block(d, 1));
            v
        };
        if swap_hosts_d0 {
            swap_lists(&mut permuted, &host_block(0, 0), &host_block(0, 1));
        }
        if swap_hosts_d1 {
            swap_lists(&mut permuted, &host_block(1, 0), &host_block(1, 1));
        }
        if swap_domains {
            swap_lists(&mut permuted, &domain_all(0), &domain_all(1));
        }
        if swap_replicas {
            swap_lists(
                &mut permuted,
                &places_under(san, "itua/apps[0]/app/replicas[0]/replica/"),
                &places_under(san, "itua/apps[0]/app/replicas[1]/replica/"),
            );
        }

        let mut canon_original = original.clone();
        spec.canonicalize(&mut canon_original);
        let mut canon_permuted = permuted.clone();
        spec.canonicalize(&mut canon_permuted);
        prop_assert_eq!(&canon_original, &canon_permuted);

        // Orbit size is a function of the orbit, so it agrees too, and
        // canonicalization is idempotent.
        prop_assert_eq!(spec.orbit_size(&original), spec.orbit_size(&permuted));
        let mut twice = canon_original.clone();
        spec.canonicalize(&mut twice);
        prop_assert_eq!(&twice, &canon_original);
    }
}

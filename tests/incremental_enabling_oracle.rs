//! Oracle check for the simulator's incremental enabling index on the
//! paper's three study models.
//!
//! The stabilization hot path keeps a persistent, activity-id-ordered set
//! of enabled instantaneous activities, synced from the marking's
//! dirty-place log, instead of rescanning every activity per firing. The
//! randomized-SAN property test (`crates/san/tests/proptests.rs`,
//! `incremental_enabled_set_matches_full_rescan`) covers adversarial
//! structures; this test pins the same guarantee on the actual ITUA SANs
//! the figures are built from: for each study's parameter sets, the
//! default simulator and the full-rescan oracle
//! ([`SanSimulator::set_full_rescan_stabilize`]) produce bit-identical
//! event trajectories and final markings.

use std::sync::Arc;

use itua_repro::itua::san_model;
use itua_repro::san::marking::Marking;
use itua_repro::san::model::{ActivityId, SanBuilder};
use itua_repro::san::simulator::{Observer, SanSimulator};
use itua_repro::studies::{figure3, figure4, figure5};

/// Exact event trace: (time bits, activity index) pairs plus the final
/// marking, so any divergence — ordering, timing, or routing — fails.
#[derive(Default, PartialEq, Debug)]
struct Trace {
    events: Vec<(u64, u32)>,
    finals: Vec<i32>,
}

impl Observer for Trace {
    fn on_event(&mut self, t: f64, a: ActivityId, _m: &Marking) {
        self.events.push((t.to_bits(), a.index() as u32));
    }
    fn on_end(&mut self, _t: f64, m: &Marking) {
        self.finals = m.place_ids().map(|p| m.get(p)).collect();
    }
}

/// Runs `reps` replications of one study point through both simulators
/// and asserts identical traces.
fn assert_oracle_agreement(study: &str, points: &[itua_repro::studies::sweep::SweepPoint]) {
    // One representative parameter set per study keeps the test fast;
    // the first point exercises the densest instantaneous structure
    // (most hosts per domain or most applications).
    let point = &points[0];
    let model = san_model::build(&point.params).expect("study model builds");
    let incremental = SanSimulator::new(model.san.clone());
    let mut full_rescan = SanSimulator::new(model.san.clone());
    full_rescan.set_full_rescan_stabilize(true);
    let mut inc_scratch = incremental.scratch();
    let mut full_scratch = full_rescan.scratch();
    for rep in 0..4u64 {
        let seed = 0xDEC0DE ^ rep;
        let mut inc = Trace::default();
        incremental
            .run_with_scratch(seed, point.horizon, &mut [&mut inc], &mut inc_scratch)
            .expect("incremental run succeeds");
        let mut full = Trace::default();
        full_rescan
            .run_with_scratch(seed, point.horizon, &mut [&mut full], &mut full_scratch)
            .expect("full-rescan run succeeds");
        assert_eq!(
            inc, full,
            "{study}: incremental enabling index diverged from full rescan (seed {seed})"
        );
        assert!(
            !inc.events.is_empty(),
            "{study}: trace is empty — the comparison is vacuous"
        );
    }
}

#[test]
fn figure3_model_matches_full_rescan_oracle() {
    assert_oracle_agreement("figure3", &figure3::points());
}

#[test]
fn figure4_model_matches_full_rescan_oracle() {
    assert_oracle_agreement("figure4", &figure4::points());
}

#[test]
fn figure5_model_matches_full_rescan_oracle() {
    assert_oracle_agreement("figure5", &figure5::points());
}

/// Crafted two-cursor interaction: a single timed firing dirties a place
/// (`shared`) read by an instantaneous dependent (`drain`) *and* by a
/// timed dependent's marking-dependent rate (`pulse`), and the resulting
/// stabilization cascade dirties another such doubly-read place
/// (`relay`). The instantaneous cursor (stabilization) and the timed
/// cursor (reschedule) therefore consume overlapping ranges of the same
/// dirty log within one step — the interaction PR 5 left untested. All
/// four combinations of the stabilize/reschedule full-rescan oracles
/// must walk bit-identical trajectories.
#[test]
fn shared_dirty_log_cascade_matches_oracles() {
    let build = || {
        let mut b = SanBuilder::new("two-cursor-cascade");
        let src = b.place("src", 3);
        let shared = b.place("shared", 0);
        let relay = b.place("relay", 0);
        let sink = b.place("sink", 0);
        let gate = b.place("gate", 1);
        // The firing under test: dirties `shared` for both dependents.
        b.timed_activity("trigger", 1.0)
            .input_arc(src, 1)
            .output_arc(shared, 2)
            .build()
            .unwrap();
        // Instantaneous dependent of `shared`; its cascade dirties
        // `relay`, which again has both kinds of dependents.
        b.instantaneous_activity("drain")
            .input_arc(shared, 2)
            .case(2.0, move |m| m.add(relay, 1))
            .case(1.0, move |m| {
                m.add(relay, 2);
                m.add(sink, 1);
            })
            .build()
            .unwrap();
        // Instantaneous dependent of `relay`: feeds tokens back so the
        // cascade can re-enable `trigger` and `drain` mid-stabilization.
        b.instantaneous_activity("spill")
            .input_arc(relay, 2)
            .case(1.0, move |m| m.add(src, 1))
            .case(1.0, move |m| m.add(shared, 1))
            .build()
            .unwrap();
        // Timed dependent of both dirty places: always enabled (gate
        // self-loop), rate reads `shared` and `relay`, so every cascade
        // above forces a resample through the timed cursor.
        let rate = Arc::new(move |m: &Marking| {
            0.3 + f64::from(m.get(shared).max(0)) + f64::from(m.get(relay).max(0))
        });
        b.timed_activity_fn("pulse", rate, &[shared, relay])
            .input_arc(gate, 1)
            .output_arc(gate, 1)
            .output_arc(sink, 1)
            .build()
            .unwrap();
        b.finish().unwrap()
    };

    let mut sims = Vec::new();
    for (stab, resched) in [(false, false), (true, false), (false, true), (true, true)] {
        let mut sim = SanSimulator::new(build());
        sim.set_full_rescan_stabilize(stab);
        sim.set_full_rescan_reschedule(resched);
        sims.push(((stab, resched), sim));
    }
    for rep in 0..16u64 {
        let seed = 0xCA5CADE ^ rep;
        let mut traces = Vec::new();
        for ((stab, resched), sim) in &sims {
            let mut scratch = sim.scratch();
            let mut t = Trace::default();
            sim.run_with_scratch(seed, 40.0, &mut [&mut t], &mut scratch)
                .expect("run succeeds");
            traces.push(((*stab, *resched), t));
        }
        let (_, baseline) = &traces[0];
        assert!(
            !baseline.events.is_empty(),
            "crafted cascade produced no events — the comparison is vacuous"
        );
        for (flags, t) in &traces[1..] {
            assert_eq!(
                baseline, t,
                "oracle combination {flags:?} diverged from the incremental path (seed {seed})"
            );
        }
    }
}

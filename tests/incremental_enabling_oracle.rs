//! Oracle check for the simulator's incremental enabling index on the
//! paper's three study models.
//!
//! The stabilization hot path keeps a persistent, activity-id-ordered set
//! of enabled instantaneous activities, synced from the marking's
//! dirty-place log, instead of rescanning every activity per firing. The
//! randomized-SAN property test (`crates/san/tests/proptests.rs`,
//! `incremental_enabled_set_matches_full_rescan`) covers adversarial
//! structures; this test pins the same guarantee on the actual ITUA SANs
//! the figures are built from: for each study's parameter sets, the
//! default simulator and the full-rescan oracle
//! ([`SanSimulator::set_full_rescan_stabilize`]) produce bit-identical
//! event trajectories and final markings.

use itua_repro::itua::san_model;
use itua_repro::san::marking::Marking;
use itua_repro::san::model::ActivityId;
use itua_repro::san::simulator::{Observer, SanSimulator};
use itua_repro::studies::{figure3, figure4, figure5};

/// Exact event trace: (time bits, activity index) pairs plus the final
/// marking, so any divergence — ordering, timing, or routing — fails.
#[derive(Default, PartialEq, Debug)]
struct Trace {
    events: Vec<(u64, u32)>,
    finals: Vec<i32>,
}

impl Observer for Trace {
    fn on_event(&mut self, t: f64, a: ActivityId, _m: &Marking) {
        self.events.push((t.to_bits(), a.index() as u32));
    }
    fn on_end(&mut self, _t: f64, m: &Marking) {
        self.finals = m.place_ids().map(|p| m.get(p)).collect();
    }
}

/// Runs `reps` replications of one study point through both simulators
/// and asserts identical traces.
fn assert_oracle_agreement(study: &str, points: &[itua_repro::studies::sweep::SweepPoint]) {
    // One representative parameter set per study keeps the test fast;
    // the first point exercises the densest instantaneous structure
    // (most hosts per domain or most applications).
    let point = &points[0];
    let model = san_model::build(&point.params).expect("study model builds");
    let incremental = SanSimulator::new(model.san.clone());
    let mut full_rescan = SanSimulator::new(model.san.clone());
    full_rescan.set_full_rescan_stabilize(true);
    let mut inc_scratch = incremental.scratch();
    let mut full_scratch = full_rescan.scratch();
    for rep in 0..4u64 {
        let seed = 0xDEC0DE ^ rep;
        let mut inc = Trace::default();
        incremental
            .run_with_scratch(seed, point.horizon, &mut [&mut inc], &mut inc_scratch)
            .expect("incremental run succeeds");
        let mut full = Trace::default();
        full_rescan
            .run_with_scratch(seed, point.horizon, &mut [&mut full], &mut full_scratch)
            .expect("full-rescan run succeeds");
        assert_eq!(
            inc, full,
            "{study}: incremental enabling index diverged from full rescan (seed {seed})"
        );
        assert!(
            !inc.events.is_empty(),
            "{study}: trace is empty — the comparison is vacuous"
        );
    }
}

#[test]
fn figure3_model_matches_full_rescan_oracle() {
    assert_oracle_agreement("figure3", &figure3::points());
}

#[test]
fn figure4_model_matches_full_rescan_oracle() {
    assert_oracle_agreement("figure4", &figure4::points());
}

#[test]
fn figure5_model_matches_full_rescan_oracle() {
    assert_oracle_agreement("figure5", &figure5::points());
}

//! Cross-backend oracle suite: the analytic backend solves small
//! configurations *exactly*, so for state-space-tractable parameter sets
//! every simulation backend must land within its own confidence interval
//! of the analytic value — not merely agree with the other simulator.
//!
//! All three backends run through the unified pipeline
//! ([`itua_repro::runner::run_measures`]), exactly the code path the
//! figure binaries use with `--backend des|san|analytic`. The analytic
//! leg short-circuits replication and returns zero-variance estimates.
//!
//! Compared measures are the ones with a marking-level reward
//! formulation: unavailability, unreliability, and the instant-of-time
//! measures. `frac_corrupt_hosts_at_exclusion` and the `time_to_first_*`
//! measures condition on events inside a replication and are not
//! produced analytically (DESIGN.md §8), so they are not compared.
//!
//! Configurations disable attack spread to keep the tangible state space
//! in the low thousands — tractable for exact solution even in debug
//! builds. Seeds are fixed, so the suite is deterministic: the
//! confidence-interval checks either always pass or always fail.

use itua_repro::itua::measures::names;
use itua_repro::itua::params::Params;
use itua_repro::runner::{run_measures, BackendKind, ItuaBackend, NullProgress, RunnerConfig};
use itua_repro::stats::replication::Estimate;

const HORIZON: f64 = 5.0;
const CONFIDENCE: f64 = 0.95;

/// Measures every backend produces for these configurations.
fn shared_measures() -> Vec<String> {
    vec![
        names::UNAVAILABILITY.to_owned(),
        names::UNRELIABILITY.to_owned(),
        format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, HORIZON),
        format!("{}@{}", names::REPLICAS_RUNNING, HORIZON),
        format!("{}@{}", names::LOAD_PER_HOST, HORIZON),
    ]
}

/// A configuration with attack spread disabled (exactly solvable).
fn no_spread(domains: usize, hosts: usize, apps: usize, reps: usize) -> Params {
    let mut p = Params::default()
        .with_domains(domains, hosts)
        .with_applications(apps, reps);
    p.spread_rate_domain = 0.0;
    p.spread_rate_system = 0.0;
    p
}

/// Runs one configuration through the unified pipeline on the given
/// backend and returns the estimates.
fn estimates(kind: BackendKind, params: &Params, reps: u32, origin_seed: u64) -> Vec<Estimate> {
    let backend = ItuaBackend::for_params(kind, params).expect("valid params");
    run_measures(
        &backend,
        reps,
        CONFIDENCE,
        origin_seed,
        HORIZON,
        &[HORIZON],
        &RunnerConfig::default(),
        &NullProgress,
    )
    .expect("backend run succeeds")
    .estimates()
}

fn value_of(ests: &[Estimate], measure: &str, tag: &str) -> Estimate {
    ests.iter()
        .find(|e| e.name == measure)
        .unwrap_or_else(|| panic!("{tag} produced no estimate for {measure}"))
        .clone()
}

/// Asserts a simulator's CI contains the exact value for every shared
/// measure. A zero-width simulator CI (a measure that is deterministic
/// under these parameters) must hit the exact value to within solver
/// truncation accuracy.
fn assert_within_ci(sim: &[Estimate], exact: &[Estimate], tag: &str) {
    for measure in shared_measures() {
        let s = value_of(sim, &measure, tag);
        let x = value_of(exact, &measure, "analytic");
        assert_eq!(x.ci.half_width, 0.0, "analytic {measure} is not exact");
        let gap = (s.ci.mean - x.ci.mean).abs();
        // 1e-7 absorbs uniformization truncation (ε = 1e-10) on measures
        // the simulation resolves exactly (zero-width CI).
        assert!(
            gap <= s.ci.half_width + 1e-7,
            "{tag} {measure}: {} not within ±{} of exact {} (gap {gap:.3e})",
            s.ci.mean,
            s.ci.half_width,
            x.ci.mean,
        );
    }
}

/// Runs all three backends on one configuration and checks both
/// simulators against the exact solution.
fn check_config(params: Params, sim_reps: u32) {
    let exact = estimates(BackendKind::Analytic, &params, 1, 0);
    let des = estimates(BackendKind::Des, &params, sim_reps, 11);
    let san = estimates(BackendKind::San, &params, sim_reps, 12);
    assert_within_ci(&des, &exact, "DES");
    assert_within_ci(&san, &exact, "SAN");
}

/// Two single-host domains: domain exclusion dynamics are live (the
/// uniformization rate is dominated by the fast exclusion decision).
#[test]
fn two_domains_agree_with_exact_solution() {
    check_config(no_spread(2, 1, 1, 2), 400);
}

/// One two-host domain, one application with two replicas: host-level
/// corruption and recovery without any domain exclusion.
#[test]
fn one_domain_two_replicas_agrees_with_exact_solution() {
    check_config(no_spread(1, 2, 1, 2), 600);
}

/// One two-host domain, two single-replica applications: per-application
/// unreliability aggregation across distinct Byzantine-absorbed chains.
#[test]
fn two_applications_agree_with_exact_solution() {
    check_config(no_spread(1, 2, 2, 1), 600);
}

/// The analytic leg is invariant in replication count and seed: the same
/// exact values come back no matter what the sweep configuration asks
/// for.
#[test]
fn analytic_oracle_ignores_replication_settings() {
    let params = no_spread(1, 2, 1, 2);
    let a = estimates(BackendKind::Analytic, &params, 1, 0);
    let b = estimates(BackendKind::Analytic, &params, 900, 424242);
    assert_eq!(a, b);
}

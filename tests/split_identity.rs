//! Property tests for the rare-event engine's *do-no-harm* contract:
//! when splitting cannot actually split, the whole weighted pipeline must
//! collapse — bit for bit — to the plain replication path.
//!
//! Two ways splitting can be inert are exercised for both simulation
//! backends (DES and SAN):
//!
//! * an **empty** [`SplitSpec`], where the tree degenerates to its root
//!   branch by construction, and
//! * a spec whose thresholds are **unreachable** (above the number of
//!   domains, so `CorruptDomainCount` can never cross them), where the
//!   degeneration is dynamic: the root branch runs with forking armed but
//!   never fires it.
//!
//! In both cases the root branch is never reseeded, so it replays exactly
//! the trajectory of the corresponding plain replication, and every tree
//! contributes one weight-1 leaf. The third property pins the estimator
//! half of that collapse in isolation: a weighted
//! [`ReplicationEstimator`] fed weight-1 observations is bitwise equal to
//! the unweighted one.

use itua_repro::itua::params::Params;
use itua_repro::rare::SplitSpec;
use itua_repro::runner::backend::{run_measures_checked, ModelCheck};
use itua_repro::runner::{
    run_measures_split, BackendKind, ItuaBackend, NullProgress, RunnerConfig,
};
use itua_repro::stats::replication::ReplicationEstimator;
use proptest::prelude::*;

/// A small configuration whose state space keeps debug-mode trajectories
/// cheap while still exercising exclusions, convictions, and recovery.
fn small_params(domains: usize, reps: usize) -> Params {
    Params::default()
        .with_domains(domains, 1)
        .with_applications(1, reps)
}

/// Runs the *plain* unweighted replication loop.
fn plain(backend: &ItuaBackend, reps: u32, seed: u64, horizon: f64) -> Vec<(String, u64, u64)> {
    let measures = run_measures_checked(
        backend,
        reps,
        0.95,
        seed,
        horizon,
        &[horizon],
        &RunnerConfig::default(),
        &NullProgress,
        ModelCheck::Off,
    )
    .expect("plain run");
    bits(measures.estimates())
}

/// Runs the splitting loop with the given spec.
fn split(
    backend: &ItuaBackend,
    spec: &SplitSpec,
    reps: u32,
    seed: u64,
    horizon: f64,
) -> Vec<(String, u64, u64)> {
    let run = run_measures_split(
        backend,
        reps,
        0.95,
        seed,
        horizon,
        &[horizon],
        spec,
        &RunnerConfig::default(),
        &NullProgress,
        ModelCheck::Off,
    )
    .expect("split run");
    bits(run.measures.estimates())
}

/// Collapses estimates to exact bit patterns so "identical" means
/// identical, not approximately equal.
fn bits(ests: Vec<itua_repro::stats::replication::Estimate>) -> Vec<(String, u64, u64)> {
    ests.into_iter()
        .map(|e| (e.name, e.ci.mean.to_bits(), e.ci.half_width.to_bits()))
        .collect()
}

proptest! {
    /// Splitting with no possible splits — empty spec or unreachable
    /// thresholds — is bit-identical to the plain path on both backends.
    #[test]
    fn inert_splitting_matches_plain_path(
        domains in 1usize..3,
        reps_per_app in 1usize..3,
        replications in 1u32..16,
        horizon in 0.5f64..3.0,
        seed in any::<u64>(),
        factor in 2u32..6,
    ) {
        let params = small_params(domains, reps_per_app);
        // `CorruptDomainCount` is bounded by the number of domains, so a
        // threshold above it can never be crossed.
        let unreachable: SplitSpec = format!("{}x{factor}", domains + 1)
            .parse()
            .expect("valid spec");
        for kind in [BackendKind::Des, BackendKind::San] {
            let backend = ItuaBackend::for_params(kind, &params).expect("valid params");
            let reference = plain(&backend, replications, seed, horizon);
            for spec in [&SplitSpec::none(), &unreachable] {
                let got = split(&backend, spec, replications, seed, horizon);
                prop_assert_eq!(&got, &reference, "{} spec {:?}", kind, spec);
            }
        }
    }

    /// A weighted estimator fed weight-1 observations is bitwise equal to
    /// the unweighted estimator on the same values.
    #[test]
    fn weighted_estimator_collapses_at_weight_one(
        values in prop::collection::vec(0.0f64..1e3, 2..40),
        level in 0.5f64..0.999,
    ) {
        let mut unweighted = ReplicationEstimator::new(level);
        let mut weighted = ReplicationEstimator::new_weighted(level);
        for v in &values {
            unweighted.record("m", *v);
            weighted.record_weighted("m", *v, 1.0);
        }
        let a = unweighted.estimate("m").expect("unweighted estimate");
        let b = weighted.estimate("m").expect("weighted estimate");
        prop_assert_eq!(a.ci.mean.to_bits(), b.ci.mean.to_bits());
        prop_assert_eq!(a.ci.half_width.to_bits(), b.ci.half_width.to_bits());
        prop_assert_eq!(a.ci.n, b.ci.n);
    }
}

//! Oracle suite for the symmetry-lumped analytic backend.
//!
//! The lumped chain is generated directly in canonical
//! (orbit-representative) form under the model's wreath-product symmetry
//! and claims to be an *exact* quotient: every measure must equal the
//! unlumped solution up to uniformization truncation. Two layers of
//! evidence here:
//!
//! * a property test over randomized micro topologies and rate
//!   parameters — lumped and unlumped `ItuaAnalytic` solutions must
//!   agree to 1e-9 relative on every measure, and the orbit sizes must
//!   account for exactly the unlumped state count;
//! * a configuration the *unlumped* backend rejects at its default
//!   state budget, where the lumped backend still solves exactly — both
//!   simulators' confidence intervals must cover the lumped values,
//!   mirroring `tests/backend_agreement.rs` on a previously-infeasible
//!   config.

use itua_repro::itua::analytic::{AnalyticError, AnalyticOptions, ItuaAnalytic};
use itua_repro::itua::measures::names;
use itua_repro::itua::params::Params;
use itua_repro::runner::{run_measures, BackendKind, ItuaBackend, NullProgress, RunnerConfig};
use itua_repro::stats::replication::Estimate;
use proptest::prelude::*;

const CONFIDENCE: f64 = 0.95;

/// A micro configuration with attack spread disabled (exactly solvable
/// in debug builds).
fn no_spread(domains: usize, hosts: usize, apps: usize, reps: usize) -> Params {
    let mut p = Params::default()
        .with_domains(domains, hosts)
        .with_applications(apps, reps);
    p.spread_rate_domain = 0.0;
    p.spread_rate_system = 0.0;
    p
}

/// Solves `params` lumped or plain with a generous state budget.
fn solve(params: &Params, lump: bool, horizon: f64) -> Vec<Estimate> {
    let analytic = ItuaAnalytic::with_options(
        params,
        &AnalyticOptions {
            max_states: 1_000_000,
            lump,
            threads: 1,
        },
    )
    .expect("micro configuration is exactly solvable");
    analytic
        .solve(horizon, &[horizon], CONFIDENCE)
        .expect("solve succeeds")
        .estimates()
}

/// Micro topology family for the property test: every symmetry unit the
/// canonicalizer handles is non-trivial somewhere in this list (domain
/// permutations, within-domain host permutations, replica-slot
/// permutations, interchangeable single-replica applications), and every
/// shape keeps the *unreduced* tangible space in the low thousands so
/// debug builds solve both sides in seconds.
const SHAPES: &[(usize, usize, usize, usize)] = &[
    (2, 1, 1, 2), // two single-host domains, replica pair
    (1, 2, 1, 2), // one two-host domain, replica pair
    (1, 2, 2, 1), // two interchangeable single-replica apps
    (2, 1, 2, 1), // idem, across two domains
    (1, 1, 1, 3), // three replica slots on one host (S3 slot symmetry)
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lumped and unlumped analytic solutions agree to 1e-9 relative on
    /// randomized micro topologies and rates, and the quotient's orbit
    /// sizes sum to exactly the unlumped state count.
    #[test]
    fn lumped_measures_match_unlumped_on_random_micro_topologies(
        shape in 0usize..5,
        attack in 0.2f64..2.0,
        misbehave in 0.2f64..2.0,
        false_alarm in 0.0f64..0.3,
    ) {
        let (domains, hosts, apps, reps) = SHAPES[shape];
        let mut params = no_spread(domains, hosts, apps, reps);
        params.base_attack_rate = attack;
        params.misbehave_rate = misbehave;
        params.false_alarm_rate = false_alarm;

        let full = ItuaAnalytic::with_options(
            &params,
            &AnalyticOptions { max_states: 1_000_000, lump: false, threads: 1 },
        ).expect("unlumped micro build");
        let lumped = ItuaAnalytic::with_options(
            &params,
            &AnalyticOptions { max_states: 1_000_000, lump: true, threads: 1 },
        ).expect("lumped micro build");
        prop_assert!(lumped.num_states() <= full.num_states());
        prop_assert_eq!(
            lumped.full_state_total(),
            Some(full.num_states() as u128),
            "orbit sizes must account for every unlumped state"
        );

        let horizon = 2.0;
        let a = full.solve(horizon, &[1.0, horizon], CONFIDENCE).expect("full solve");
        let b = lumped.solve(horizon, &[1.0, horizon], CONFIDENCE).expect("lumped solve");
        let (ea, eb) = (a.estimates(), b.estimates());
        prop_assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(&eb) {
            prop_assert_eq!(&x.name, &y.name);
            let denom = x.ci.mean.abs().max(1e-12);
            prop_assert!(
                ((x.ci.mean - y.ci.mean) / denom).abs() < 1e-9,
                "{}: full {} vs lumped {}", x.name, x.ci.mean, y.ci.mean
            );
        }
    }
}

/// Runs one simulation backend through the unified pipeline.
fn estimates(
    kind: BackendKind,
    params: &Params,
    reps: u32,
    seed: u64,
    horizon: f64,
) -> Vec<Estimate> {
    let backend = ItuaBackend::for_params(kind, params).expect("valid params");
    run_measures(
        &backend,
        reps,
        CONFIDENCE,
        seed,
        horizon,
        &[horizon],
        &RunnerConfig::default(),
        &NullProgress,
    )
    .expect("backend run succeeds")
    .estimates()
}

/// Measures compared against the simulators. `load_per_host` is omitted:
/// on [`infeasible_params`] an exclusion removes a replica *and* its
/// host together, so the measure deviates from 1 with probability ~3e-4
/// — far below what a few hundred replications resolve (both simulators
/// report a zero-width CI at exactly 1). The property test above covers
/// it analytically on every shape.
fn shared_measures(horizon: f64) -> Vec<String> {
    vec![
        names::UNAVAILABILITY.to_owned(),
        names::UNRELIABILITY.to_owned(),
        format!("{}@{}", names::FRAC_DOMAINS_EXCLUDED, horizon),
        format!("{}@{}", names::REPLICAS_RUNNING, horizon),
    ]
}

/// Three interchangeable single-host domains with a three-replica
/// application: 184 491 tangible states — beyond the unlumped default
/// budget of 100 000 — but only 8 054 orbits once the domain and
/// replica-slot permutations are lumped.
fn infeasible_params() -> Params {
    no_spread(3, 1, 1, 3)
}

/// The headline property of this PR: a configuration the unlumped
/// analytic backend rejects at its default budget is solved exactly via
/// lumping, and both simulators' CIs cover the lumped values.
#[test]
fn simulators_cover_lumped_exact_values_on_unlumped_infeasible_config() {
    let params = infeasible_params();
    let horizon = 2.0;

    // Previously infeasible: the unlumped default budget rejects it and
    // the error steers to --lump with the measured lumped count.
    let err = ItuaAnalytic::new(&params, ItuaAnalytic::DEFAULT_MAX_STATES).unwrap_err();
    match &err {
        AnalyticError::TooLarge { lumped_fit, .. } => {
            assert!(lumped_fit.is_some(), "lumped probe must fit: {err}");
        }
        other => panic!("expected TooLarge, got {other}"),
    }

    let exact = solve(&params, true, horizon);
    let des = estimates(BackendKind::Des, &params, 400, 21, horizon);
    let san = estimates(BackendKind::San, &params, 400, 22, horizon);
    for measure in shared_measures(horizon) {
        let x = exact
            .iter()
            .find(|e| e.name == measure)
            .unwrap_or_else(|| panic!("no exact {measure}"));
        assert_eq!(x.ci.half_width, 0.0, "lumped {measure} is not exact");
        for (tag, sim) in [("DES", &des), ("SAN", &san)] {
            let s = sim
                .iter()
                .find(|e| e.name == measure)
                .unwrap_or_else(|| panic!("{tag} produced no {measure}"));
            let gap = (s.ci.mean - x.ci.mean).abs();
            // 1e-7 absorbs uniformization truncation on measures the
            // simulation resolves exactly (zero-width CI).
            assert!(
                gap <= s.ci.half_width + 1e-7,
                "{tag} {measure}: {} not within ±{} of lumped exact {} (gap {gap:.3e})",
                s.ci.mean,
                s.ci.half_width,
                x.ci.mean,
            );
        }
    }
}

//! Oracle check for the simulator's incremental timed-reschedule index.
//!
//! After every timed firing the simulator must decide which timed
//! activities to reschedule: newly enabled ones get a sample, disabled
//! ones are cancelled, and exponential activities with marking-dependent
//! rates are resampled. The hot path derives that set incrementally from
//! the marking's dirty-place log via the per-place timed-dependent index
//! (`TimedIndex`); the historical implementation rescanned every timed
//! activity's read set. [`SanSimulator::set_full_rescan_reschedule`]
//! keeps the rescan alive as an oracle: both paths must walk bit-identical
//! trajectories — same events at the same (bit-pattern) times, same final
//! marking — because the affected set's order feeds the RNG draw order.
//!
//! Fixed tests pin the guarantee on the paper's figure 3/4/5 models (and
//! on the combination with the stabilization oracle from PR 5); the
//! proptest drives randomized composed SANs whose marking-dependent rates
//! and instantaneous cascades make the reschedule set both dense and
//! history-dependent.

use std::sync::Arc;

use itua_repro::itua::san_model;
use itua_repro::san::marking::Marking;
use itua_repro::san::model::{ActivityId, SanBuilder};
use itua_repro::san::simulator::{Observer, SanSimulator};
use itua_repro::studies::{figure3, figure4, figure5};
use proptest::prelude::*;

/// Exact event trace: (time bits, activity index) pairs plus the final
/// marking, so any divergence — ordering, timing, or routing — fails.
#[derive(Default, PartialEq, Debug)]
struct Trace {
    events: Vec<(u64, u32)>,
    finals: Vec<i32>,
}

impl Observer for Trace {
    fn on_event(&mut self, t: f64, a: ActivityId, _m: &Marking) {
        self.events.push((t.to_bits(), a.index() as u32));
    }
    fn on_end(&mut self, _t: f64, m: &Marking) {
        self.finals = m.place_ids().map(|p| m.get(p)).collect();
    }
}

fn trace(sim: &SanSimulator, seed: u64, horizon: f64) -> Trace {
    let mut scratch = sim.scratch();
    let mut t = Trace::default();
    sim.run_with_scratch(seed, horizon, &mut [&mut t], &mut scratch)
        .expect("run succeeds");
    t
}

/// Runs replications of one study point through the incremental
/// simulator, the reschedule-rescan oracle, and the both-oracles
/// combination, asserting identical traces.
fn assert_oracle_agreement(study: &str, points: &[itua_repro::studies::sweep::SweepPoint]) {
    let point = &points[0];
    let model = san_model::build(&point.params).expect("study model builds");
    let incremental = SanSimulator::new(model.san.clone());
    let mut resched_oracle = SanSimulator::new(model.san.clone());
    resched_oracle.set_full_rescan_reschedule(true);
    let mut both_oracles = SanSimulator::new(model.san.clone());
    both_oracles.set_full_rescan_reschedule(true);
    both_oracles.set_full_rescan_stabilize(true);
    for rep in 0..4u64 {
        let seed = 0x07E5_CA1E ^ rep;
        let inc = trace(&incremental, seed, point.horizon);
        let resched = trace(&resched_oracle, seed, point.horizon);
        assert_eq!(
            inc, resched,
            "{study}: incremental timed reschedule index diverged from full rescan (seed {seed})"
        );
        let both = trace(&both_oracles, seed, point.horizon);
        assert_eq!(
            inc, both,
            "{study}: combined stabilize+reschedule oracle diverged (seed {seed})"
        );
        assert!(
            !inc.events.is_empty(),
            "{study}: trace is empty — the comparison is vacuous"
        );
    }
}

#[test]
fn figure3_model_matches_reschedule_oracle() {
    assert_oracle_agreement("figure3", &figure3::points());
}

#[test]
fn figure4_model_matches_reschedule_oracle() {
    assert_oracle_agreement("figure4", &figure4::points());
}

#[test]
fn figure5_model_matches_reschedule_oracle() {
    assert_oracle_agreement("figure5", &figure5::points());
}

/// A random SAN that stresses the reschedule path: ring movers whose
/// exponential rates read a shared hub place (every hub change forces a
/// resample of all of them), plus instantaneous routers that cascade
/// tokens between buffers, dirtying places read by further timed movers
/// mid-stabilization.
fn build_reschedule_stress(stages: usize, tokens: i32) -> Arc<itua_repro::san::model::San> {
    let mut b = SanBuilder::new("resched-stress");
    let hub = b.place("hub", 1);
    let ring: Vec<_> = (0..stages)
        .map(|i| b.place(format!("r{i}"), if i == 0 { tokens } else { 0 }))
        .collect();
    let buf: Vec<_> = (0..stages).map(|i| b.place(format!("b{i}"), 0)).collect();
    for i in 0..stages {
        // Marking-dependent rate: every activity reads the shared hub, so
        // any firing that moves hub tokens reschedules all of them.
        let rate =
            Arc::new(move |m: &Marking| 0.5 + f64::from(m.get(hub).max(0)) + i as f64 * 0.25);
        b.timed_activity_fn(format!("mv{i}"), rate, &[hub])
            .input_arc(ring[i], 1)
            .output_arc(buf[i], 1)
            .build()
            .unwrap();
        // The hub pump keeps hub tokens oscillating so rates keep moving.
        if i == 0 {
            b.timed_activity(format!("pump{i}"), 2.0)
                .input_arc(hub, 1)
                .output_arc(hub, 1)
                .output_arc(buf[i], 1)
                .build()
                .unwrap();
        }
        // Instantaneous routing: return to the ring or cascade into the
        // next buffer (possibly enabling the next router), with one case
        // also touching the hub so stabilization dirties a place that
        // every timed activity reads.
        let next_ring = ring[(i + 1) % stages];
        let next_buf = buf[(i + 1) % stages];
        b.instantaneous_activity(format!("route{i}"))
            .input_arc(buf[i], 2)
            .case(2.0, move |m| m.add(next_ring, 2))
            .case(1.0, move |m| {
                m.add(next_buf, 1);
                m.add(next_ring, 1);
            })
            .build()
            .unwrap();
    }
    b.finish().unwrap()
}

proptest! {
    /// On randomized composed SANs, the incremental reschedule index and
    /// the full-rescan oracle (alone and combined with the stabilization
    /// oracle) produce bit-identical event sequences and final markings.
    #[test]
    fn random_sans_match_reschedule_oracle(
        stages in 2usize..6,
        tokens in 1i32..5,
        seeds in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let incremental = SanSimulator::new(build_reschedule_stress(stages, tokens));
        let mut resched_oracle = SanSimulator::new(build_reschedule_stress(stages, tokens));
        resched_oracle.set_full_rescan_reschedule(true);
        let mut both_oracles = SanSimulator::new(build_reschedule_stress(stages, tokens));
        both_oracles.set_full_rescan_reschedule(true);
        both_oracles.set_full_rescan_stabilize(true);
        for seed in seeds {
            let inc = trace(&incremental, seed, 25.0);
            let resched = trace(&resched_oracle, seed, 25.0);
            prop_assert_eq!(&inc, &resched, "reschedule oracle, seed {}", seed);
            let both = trace(&both_oracles, seed, 25.0);
            prop_assert_eq!(&inc, &both, "combined oracle, seed {}", seed);
            prop_assert!(!inc.events.is_empty(), "vacuous trace, seed {}", seed);
        }
    }
}

//! End-to-end checks of the structural analyzer over the composed ITUA
//! SAN models: the hand-derived invariants of `itua_core::analysis` must
//! hold on every probed firing, the paper-scale study configurations
//! must carry no hard findings, and the documented `frac_corrupt`
//! measurement gap must surface as an *allowlisted soft* finding — never
//! a gate.

use itua_analyzer::{AnalysisConfig, Severity};
use itua_core::params::Params;
use itua_core::{analysis, san_model};
use itua_studies::{figure3, figure4, figure5};

fn micro_params() -> Params {
    Params::default().with_domains(1, 2).with_applications(1, 2)
}

/// A probe sized for debug-build test time; CI's `--check` run covers
/// the full default depth in release.
fn small_probe() -> AnalysisConfig {
    let mut cfg = AnalysisConfig::default();
    cfg.probe.max_markings = 256;
    cfg.probe.num_walks = 8;
    cfg.probe.walk_len = 64;
    cfg
}

#[test]
fn micro_model_satisfies_the_hand_derived_invariants() {
    let model = san_model::build(&micro_params()).unwrap();
    let report = analysis::full_report(&model, &AnalysisConfig::default());
    // No hard finding means: every expected invariant (replica
    // conservation, running/corruption counters, per-domain host and
    // manager counters, system-wide manager counters) held at the
    // initial marking and across every firing the probe observed.
    assert!(!report.has_hard_findings(), "{}", report.render(&model.san));
    assert!(report.invariants_computed);
    assert!(
        report.nontrivial_p_invariants() >= 2,
        "micro model must exhibit real conservation laws, got {}",
        report.nontrivial_p_invariants()
    );
}

#[test]
fn composed_figure3_model_has_nontrivial_p_invariants() {
    let point = figure3::points().swap_remove(0);
    let model = san_model::build(&point.params).unwrap();
    let report = analysis::full_report(&model, &small_probe());
    assert!(
        report.invariants_computed,
        "figure-3 models sit under the invariant place cap"
    );
    assert!(
        report.nontrivial_p_invariants() >= 2,
        "expected at least two nontrivial P-invariants, got {}",
        report.nontrivial_p_invariants()
    );
    assert!(!report.has_hard_findings(), "{}", report.render(&model.san));
}

#[test]
fn study_configurations_carry_no_hard_findings() {
    let reps = [
        figure4::points().swap_remove(0),
        figure5::points().swap_remove(0),
    ];
    for point in reps {
        let model = san_model::build(&point.params).unwrap();
        let report = analysis::full_report(&model, &small_probe());
        assert!(
            !report.has_hard_findings(),
            "{} (x = {}):\n{}",
            point.series,
            point.x,
            report.render(&model.san)
        );
    }
}

#[test]
fn frac_corrupt_gap_fires_as_an_allowlisted_soft_finding() {
    let model = san_model::build(&micro_params()).unwrap();
    let san = &model.san;
    // Craft the smallest marking exhibiting the gap: a domain exclusion
    // in progress, host 0 clean (OS and manager) but hosting the
    // application while one of its replicas is corrupt and undetected.
    // `shut_host` then fires without crediting `dom_excl_corrupt`, even
    // though the excluded host may well have held the corrupt replica.
    let mut values: Vec<i32> = san.initial_marking().values().to_vec();
    for (name, v) in [
        ("itua/domains[0]/hosts/dom_excluding", 1),
        ("itua/domains[0]/hosts[0]/host/has_app_0", 1),
        ("itua/domains[0]/hosts/dom_has_app_0", 1),
        ("itua/apps[0]/app/rep_corr_undetected", 1),
    ] {
        let id = san
            .place_id(name)
            .unwrap_or_else(|| panic!("model has no place '{name}'"));
        values[id.index()] = v;
    }
    let mut cfg = small_probe();
    cfg.probe.extra_roots.push(values);
    let report = analysis::full_report(&model, &cfg);
    let gap: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.id == "frac-corrupt-replica-blind")
        .collect();
    assert!(
        !gap.is_empty(),
        "crafted marking must drive shut_host into the blind spot:\n{}",
        report.render(san)
    );
    assert!(
        gap.iter().all(|f| f.severity == Severity::Soft),
        "the gap is documented and allowlisted, so it must not gate"
    );
    assert!(!report.has_hard_findings(), "{}", report.render(san));
}

//! End-to-end checks of the structural analyzer over the composed ITUA
//! SAN models: the hand-derived invariants of `itua_core::analysis` must
//! hold on every probed firing, the paper-scale study configurations
//! must carry no hard findings, and the documented `frac_corrupt`
//! measurement gap must surface as an *allowlisted soft* finding — never
//! a gate.

use itua_analyzer::{AnalysisConfig, Severity};
use itua_core::params::Params;
use itua_core::{analysis, san_model};
use itua_studies::{figure3, figure4, figure5};

fn micro_params() -> Params {
    Params::default().with_domains(1, 2).with_applications(1, 2)
}

/// A probe sized for debug-build test time; CI's `--check` run covers
/// the full default depth in release.
fn small_probe() -> AnalysisConfig {
    let mut cfg = AnalysisConfig::default();
    cfg.probe.max_markings = 256;
    cfg.probe.num_walks = 8;
    cfg.probe.walk_len = 64;
    cfg
}

#[test]
fn micro_model_satisfies_the_hand_derived_invariants() {
    let model = san_model::build(&micro_params()).unwrap();
    let report = analysis::full_report(&model, &AnalysisConfig::default());
    // No hard finding means: every expected invariant (replica
    // conservation, running/corruption counters, per-domain host and
    // manager counters, system-wide manager counters) held at the
    // initial marking and across every firing the probe observed.
    assert!(!report.has_hard_findings(), "{}", report.render(&model.san));
    assert!(report.invariants_computed);
    assert!(
        report.nontrivial_p_invariants() >= 2,
        "micro model must exhibit real conservation laws, got {}",
        report.nontrivial_p_invariants()
    );
}

#[test]
fn composed_figure3_model_has_nontrivial_p_invariants() {
    let point = figure3::points().swap_remove(0);
    let model = san_model::build(&point.params).unwrap();
    let report = analysis::full_report(&model, &small_probe());
    assert!(
        report.invariants_computed,
        "figure-3 models sit under the invariant place cap"
    );
    assert!(
        report.nontrivial_p_invariants() >= 2,
        "expected at least two nontrivial P-invariants, got {}",
        report.nontrivial_p_invariants()
    );
    assert!(!report.has_hard_findings(), "{}", report.render(&model.san));
}

#[test]
fn study_configurations_carry_no_hard_findings() {
    let reps = [
        figure4::points().swap_remove(0),
        figure5::points().swap_remove(0),
    ];
    for point in reps {
        let model = san_model::build(&point.params).unwrap();
        let report = analysis::full_report(&model, &small_probe());
        assert!(
            !report.has_hard_findings(),
            "{} (x = {}):\n{}",
            point.series,
            point.x,
            report.render(&model.san)
        );
    }
}

#[test]
fn frac_corrupt_gap_has_a_reachable_witness() {
    // The DESIGN.md §8 blind spot is not a hypothetical: the exhaustive
    // reachability checker *discovers* a concrete reachable marking (no
    // crafted roots) in which `shut_host` fires on a clean host of an
    // excluding domain while the application still carries an undetected
    // corrupt replica — so `dom_excl_corrupt` undercounts.
    let model = san_model::build(&micro_params()).unwrap();
    let witness = analysis::find_replica_blind_witness(&model, 200_000)
        .expect("micro state space fits the budget")
        .expect("the blind spot must be reachable from the initial marking");
    assert!(
        witness.activity.ends_with("/shut_host"),
        "gap fires on host shutdown, got '{}'",
        witness.activity
    );
    let san = &model.san;
    assert_eq!(witness.marking.len(), san.num_places());
    // The witness really exhibits the gap's preconditions: exclusion in
    // progress and an undetected corrupt replica on the books.
    let at = |name: &str| {
        let id = san
            .place_id(name)
            .unwrap_or_else(|| panic!("model has no place '{name}'"));
        witness.marking[id.index()]
    };
    assert_eq!(at("itua/domains[0]/hosts/dom_excluding"), 1);
    assert!(at("itua/apps[0]/app/rep_corr_undetected") > 0);

    // And the analyzer classifies the discovered counterexample exactly
    // as the allowlist documents: a soft finding, never a gate.
    let report = analysis::exhaustive_check(&model, 200_000).unwrap();
    let gap: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.id == "frac-corrupt-replica-blind")
        .collect();
    assert!(!gap.is_empty(), "{}", report.render());
    assert!(
        gap.iter().all(|f| f.severity == Severity::Soft),
        "the gap is documented and allowlisted, so it must not gate"
    );
    assert!(!report.has_hard_findings(), "{}", report.render());
}

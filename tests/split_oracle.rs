//! Cross-backend oracle for the rare-event engine: importance splitting
//! changes *how* trajectories are sampled (forking at upward
//! [`CorruptDomainCount`] crossings, Russian roulette below the spawn
//! level, weighted leaves), but never the estimand. On a configuration
//! small enough for the analytic CTMC backend, the splitting estimate's
//! confidence interval must therefore cover the exact value — for both
//! simulation backends — and the estimates must be bit-identical for
//! every thread count, exactly like the plain replication loop.
//!
//! The configuration mirrors `tests/backend_agreement.rs`: attack spread
//! disabled so the tangible state space stays in the low thousands. The
//! splitting spec forks at each corrupt-domain count the model can reach,
//! so the forking, reweighting, and branch-decorrelation machinery is
//! genuinely exercised (asserted via the branch totals), not just
//! bypassed.

use itua_repro::itua::measures::names;
use itua_repro::itua::params::Params;
use itua_repro::rare::SplitSpec;
use itua_repro::runner::backend::ModelCheck;
use itua_repro::runner::{
    run_measures, run_measures_split, BackendKind, ItuaBackend, NullProgress, RunnerConfig,
    SplitRun,
};

const HORIZON: f64 = 5.0;
const CONFIDENCE: f64 = 0.95;
const TREES: u32 = 1024;

/// Two single-host domains, two replicas, no attack spread: exactly
/// solvable, and a single corrupt replica already breaks the 2-replica
/// group's quorum, so unreliability mass is reachable enough for a
/// debug-build test to resolve it with ~1k trees.
fn micro_params() -> Params {
    let mut p = Params::default().with_domains(2, 1).with_applications(1, 2);
    p.spread_rate_domain = 0.0;
    p.spread_rate_system = 0.0;
    p
}

/// Forks on the first and second corrupt domain — every level this
/// 2-domain configuration can reach.
fn spec() -> SplitSpec {
    "1x4,2x4".parse().expect("valid spec")
}

fn exact_value(measure: &str) -> f64 {
    let backend = ItuaBackend::for_params(BackendKind::Analytic, &micro_params())
        .expect("analytic micro backend");
    run_measures(
        &backend,
        1,
        CONFIDENCE,
        0,
        HORIZON,
        &[HORIZON],
        &RunnerConfig::default(),
        &NullProgress,
    )
    .expect("analytic solution")
    .estimates()
    .into_iter()
    .find(|e| e.name == measure)
    .unwrap_or_else(|| panic!("analytic backend produced no {measure}"))
    .ci
    .mean
}

fn split_run(kind: BackendKind, threads: usize) -> SplitRun {
    let backend = ItuaBackend::for_params(kind, &micro_params()).expect("valid params");
    let runner = RunnerConfig {
        threads,
        ..RunnerConfig::default()
    };
    run_measures_split(
        &backend,
        TREES,
        CONFIDENCE,
        0x51C2,
        HORIZON,
        &[HORIZON],
        &spec(),
        &runner,
        &NullProgress,
        ModelCheck::Off,
    )
    .expect("splitting run")
}

/// The splitting CI covers the exact analytic unreliability on both
/// simulation backends, and the run actually split (forked branches
/// beyond the roots).
#[test]
fn splitting_ci_covers_exact_unreliability() {
    let exact = exact_value(names::UNRELIABILITY);
    assert!(exact > 0.0, "micro config has no unreliability mass");
    for kind in [BackendKind::Des, BackendKind::San] {
        let run = split_run(kind, 0);
        assert!(
            run.totals.branches > run.totals.trees,
            "{kind}: no tree ever forked — the spec never fired"
        );
        let est = run
            .measures
            .estimates()
            .into_iter()
            .find(|e| e.name == names::UNRELIABILITY)
            .expect("unreliability estimate");
        let gap = (est.ci.mean - exact).abs();
        assert!(
            gap <= est.ci.half_width,
            "{kind}: splitting 95% CI [{:.4e} ± {:.4e}] misses exact {exact:.4e} (gap {gap:.3e})",
            est.ci.mean,
            est.ci.half_width,
        );
    }
}

/// Splitting estimates (and work totals) are bit-identical across thread
/// counts: trees are seeded by replication index and reduced in
/// replication order, so the schedule cannot leak into the result.
#[test]
fn splitting_is_thread_count_invariant() {
    for kind in [BackendKind::Des, BackendKind::San] {
        let one = split_run(kind, 1);
        let eight = split_run(kind, 8);
        assert_eq!(
            one.measures.estimates(),
            eight.measures.estimates(),
            "{kind}: estimates differ across thread counts"
        );
        assert_eq!(
            one.totals, eight.totals,
            "{kind}: work totals differ across thread counts"
        );
    }
}
